//! Taking the clean-state snapshot (§4.2).
//!
//! The snapshot is taken once per container, after initialization and the
//! deployer-provided dummy request (§4.1), and *before* the first real
//! (secret-carrying) request — so its contents are guaranteed free of
//! request data. It stores, in the manager's memory: per-thread CPU state,
//! the memory layout, and the contents of every present page.

use std::collections::BTreeMap;

use gh_mem::{FrameData, FrameId, FrameTable, StoreHandle, Vma, VmaKind, Vpn};
use gh_proc::{Kernel, Pid, PtraceSession, Tid};
use gh_sim::clock::Stopwatch;
use gh_sim::Nanos;

use crate::error::GhError;
use crate::track::MemoryTracker;

/// How the snapshot's page contents are captured.
#[derive(Clone, Debug, Default)]
pub enum SnapshotMode {
    /// Full private copies (the paper's implementation).
    #[default]
    Eager,
    /// §5.5's copy-on-write references into the process's frame table.
    Cow,
    /// Copies interned into a pool-shared, deduplicating
    /// [`SnapshotStore`](gh_mem::SnapshotStore) under the given function
    /// key: the first container's pages become the refcounted base image,
    /// later containers dedup page-by-page by logical content.
    Shared {
        /// The pool's store.
        store: StoreHandle,
        /// Dedup key (one base image per function).
        key: String,
    },
}

/// How page contents are held in the manager's memory.
#[derive(Clone, Debug)]
pub enum SnapshotPages {
    /// Full copies of every present page (the paper's implementation).
    Eager(BTreeMap<u64, FrameData>),
    /// Copy-on-write references into the frame table — §5.5's proposed
    /// optimization: manager memory stays proportional to the pages the
    /// function *modifies* over its lifetime, at the cost of one
    /// on-critical-path CoW fault per unique modified page.
    Cow(BTreeMap<u64, FrameId>),
    /// References into a pool-shared [`SnapshotStore`](gh_mem::SnapshotStore):
    /// page contents deduplicated across all containers of the function,
    /// so pool memory scales with per-container deltas, not pool size.
    Shared {
        /// The owning store (shared by every container of the pool).
        store: StoreHandle,
        /// vpn → frame in the store's table.
        pages: BTreeMap<u64, FrameId>,
    },
}

/// A clean-state process snapshot held in the manager's memory.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Virtual time the snapshot was completed.
    pub taken_at: Nanos,
    /// Per-thread register files.
    pub regs: Vec<(Tid, gh_proc::RegisterSet)>,
    /// The memory layout at snapshot time.
    pub vmas: Vec<Vma>,
    /// The program break at snapshot time.
    pub brk: Vpn,
    /// Contents of every present page, keyed by vpn.
    pub pages: SnapshotPages,
}

impl Snapshot {
    /// Present pages captured.
    pub fn present_pages(&self) -> u64 {
        match &self.pages {
            SnapshotPages::Eager(m) => m.len() as u64,
            SnapshotPages::Cow(m) => m.len() as u64,
            SnapshotPages::Shared { pages, .. } => pages.len() as u64,
        }
    }

    /// Mapped pages at snapshot time.
    pub fn mapped_pages(&self) -> u64 {
        self.vmas.iter().map(|v| v.range.len()).sum()
    }

    /// True if `vpn` was present (and thus has saved contents).
    pub fn has_page(&self, vpn: Vpn) -> bool {
        match &self.pages {
            SnapshotPages::Eager(m) => m.contains_key(&vpn.0),
            SnapshotPages::Cow(m) => m.contains_key(&vpn.0),
            SnapshotPages::Shared { pages, .. } => pages.contains_key(&vpn.0),
        }
    }

    /// Saved page numbers, ascending.
    pub fn page_vpns(&self) -> Vec<u64> {
        match &self.pages {
            SnapshotPages::Eager(m) => m.keys().copied().collect(),
            SnapshotPages::Cow(m) => m.keys().copied().collect(),
            SnapshotPages::Shared { pages, .. } => pages.keys().copied().collect(),
        }
    }

    /// Saved contents of `vpn` (cloned; CoW snapshots resolve through the
    /// process's frame table, shared snapshots through the pool store).
    pub fn page_data(&self, vpn: Vpn, frames: &FrameTable) -> Option<FrameData> {
        match &self.pages {
            SnapshotPages::Eager(m) => m.get(&vpn.0).cloned(),
            SnapshotPages::Cow(m) => m.get(&vpn.0).map(|id| frames.data(*id).clone()),
            SnapshotPages::Shared { store, pages } => pages
                .get(&vpn.0)
                .map(|id| store.lock().expect("store poisoned").data(*id).clone()),
        }
    }

    /// Saved contents for every page of `range`, in order (`None` for
    /// pages the snapshot did not capture). For shared snapshots this
    /// acquires the pool store's lock **once per range** — the restorer's
    /// writeback loop resolves whole coalesced runs through here instead
    /// of paying a lock round-trip per page.
    pub fn run_data(
        &self,
        range: gh_mem::PageRange,
        frames: &FrameTable,
    ) -> Vec<Option<FrameData>> {
        match &self.pages {
            SnapshotPages::Eager(m) => range.iter().map(|v| m.get(&v.0).cloned()).collect(),
            SnapshotPages::Cow(m) => range
                .iter()
                .map(|v| m.get(&v.0).map(|id| frames.data(*id).clone()))
                .collect(),
            SnapshotPages::Shared { store, pages } => {
                let st = store.lock().expect("store poisoned");
                range
                    .iter()
                    .map(|v| pages.get(&v.0).map(|id| st.data(*id).clone()))
                    .collect()
            }
        }
    }

    /// Lazy-restore sources for every snapshot page of `runs`, keyed by
    /// vpn — what the `DeferArm` pass registers with the fault handler.
    /// Eager snapshots hand out their page copies by value; CoW
    /// snapshots hand out their frame references (a read fault installs
    /// the frame shared); shared snapshots point at the pool store,
    /// which keeps the only resident copy until the fault fires.
    ///
    /// The returned sources borrow this snapshot's frame/store
    /// references; the manager must keep the snapshot alive while any
    /// arming is pending (it does — the snapshot lives as long as the
    /// manager).
    pub fn lazy_sources(
        &self,
        runs: &[gh_mem::PageRange],
    ) -> BTreeMap<u64, gh_mem::LazyPageSource> {
        use gh_mem::LazyPageSource;
        let mut out = BTreeMap::new();
        for run in runs {
            for vpn in run.iter() {
                let src = match &self.pages {
                    SnapshotPages::Eager(m) => {
                        m.get(&vpn.0).map(|d| LazyPageSource::Data(d.clone()))
                    }
                    SnapshotPages::Cow(m) => m.get(&vpn.0).map(|&id| LazyPageSource::Frame(id)),
                    SnapshotPages::Shared { store, pages } => {
                        pages.get(&vpn.0).map(|&id| LazyPageSource::Store {
                            store: store.clone(),
                            frame: id,
                        })
                    }
                };
                out.insert(vpn.0, src.expect("deferred set ⊆ snapshot"));
            }
        }
        out
    }

    /// The stack VMAs at snapshot time (restored by zeroing, §4.4).
    pub fn stack_ranges(&self) -> Vec<gh_mem::PageRange> {
        self.vmas
            .iter()
            .filter(|v| matches!(v.kind, VmaKind::Stack))
            .map(|v| v.range)
            .collect()
    }

    /// Approximate bytes of manager memory the snapshot occupies (§5.5).
    /// Eager snapshots pay a full page per present page; CoW and shared
    /// snapshots only pay the reference table — the shared snapshot's
    /// page storage lives in the pool store and is accounted there
    /// ([`SnapshotStore::resident_bytes`](gh_mem::SnapshotStore::resident_bytes)).
    pub fn memory_bytes(&self) -> u64 {
        let meta = self.vmas.len() as u64 * 64;
        match &self.pages {
            SnapshotPages::Eager(m) => m.len() as u64 * gh_mem::PAGE_SIZE + meta,
            SnapshotPages::Cow(m) => m.len() as u64 * 16 + meta,
            SnapshotPages::Shared { pages, .. } => pages.len() as u64 * 16 + meta,
        }
    }

    /// Releases the snapshot's frame references (no-op for eager
    /// snapshots): CoW references back into the process's frame table,
    /// shared references into the pool store. Must be called before
    /// dropping the snapshot if the backing table is to be reused
    /// leak-free.
    ///
    /// Cloning a snapshot does **not** duplicate frame ownership: clones
    /// share the same references and exactly one holder may release them.
    pub fn release(&mut self, frames: &mut FrameTable) {
        match &mut self.pages {
            SnapshotPages::Eager(_) => {}
            SnapshotPages::Cow(m) => {
                for (_, id) in std::mem::take(m) {
                    frames.decref(id);
                }
            }
            SnapshotPages::Shared { store, pages } => {
                let refs = std::mem::take(pages);
                store.lock().expect("store poisoned").release(&refs);
            }
        }
    }
}

/// Timing/size record of one snapshot operation.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotReport {
    /// Total virtual time the snapshot took (the "Snapshot (ms)" column of
    /// Fig. 8).
    pub duration: Nanos,
    /// Present pages copied.
    pub present_pages: u64,
    /// Mapped pages walked.
    pub mapped_pages: u64,
    /// VMAs recorded.
    pub vmas: usize,
    /// Threads whose registers were saved.
    pub threads: usize,
}

/// Takes snapshots.
pub struct Snapshotter;

impl Snapshotter {
    /// Takes an eager (full-copy) snapshot of `pid` (§4.2 steps a–d):
    /// save CPU state of all threads, collect memory layout + page
    /// contents into the manager's memory, arm the tracker, and resume
    /// the process.
    pub fn take(
        kernel: &mut Kernel,
        pid: Pid,
        tracker: &mut dyn MemoryTracker,
    ) -> Result<(Snapshot, SnapshotReport), GhError> {
        Self::take_mode(kernel, pid, tracker, SnapshotMode::Eager)
    }

    /// Takes a snapshot in the given [`SnapshotMode`]. [`SnapshotMode::Cow`]
    /// selects §5.5's copy-on-write variant, which shares frames with the
    /// process instead of copying them and write-protects the process so
    /// the first modification of each page takes a CoW fault on the
    /// critical path. The shared mode
    /// copies pages out of the process exactly like the eager mode (same
    /// one-pass-per-page cost — the store either copies a page or
    /// verifies it equal against the base, both one pass over 4 KiB) but
    /// interns them into the pool store, so pool memory deduplicates
    /// while the virtual timeline stays identical to eager snapshotting.
    pub fn take_mode(
        kernel: &mut Kernel,
        pid: Pid,
        tracker: &mut dyn MemoryTracker,
        mode: SnapshotMode,
    ) -> Result<(Snapshot, SnapshotReport), GhError> {
        let mut sw = Stopwatch::start(&kernel.clock);
        let mut s = PtraceSession::attach(kernel, pid)?;
        // (a) Interrupt and store the CPU state of all threads.
        s.interrupt_all()?;
        let regs = s.save_regs_all()?;
        // (b) Scan /proc: memory-mapped regions and page metadata.
        let vmas = s.read_maps()?;
        let entries = s.pagemap_scan()?;
        // (c) Capture the contents of all present pages in the manager's
        // memory: full copies (eager), shared CoW references, or
        // store-interned copies (shared).
        let mapped_pages: u64 = vmas.iter().map(|v| v.range.len()).sum();
        let (pages, present_pages, copy_cost) = match mode {
            SnapshotMode::Cow => {
                let (proc, frames) = s.kernel().mem_ctx(pid)?;
                let mut refs = BTreeMap::new();
                for e in &entries {
                    if let Some(pte) = proc.mem.pte(e.vpn) {
                        frames.incref(pte.frame);
                        refs.insert(e.vpn.0, pte.frame);
                    }
                }
                proc.mem.mark_all_cow();
                let present = refs.len() as u64;
                let m = &s.kernel().cost;
                let cost = m.snapshot_base
                    + m.snapshot_cow_ref * present
                    + m.snapshot_per_mapped_page * mapped_pages;
                (SnapshotPages::Cow(refs), present, cost)
            }
            SnapshotMode::Eager | SnapshotMode::Shared { .. } => {
                let mut copies = BTreeMap::new();
                for e in &entries {
                    if let Some(data) = s.read_page(e.vpn)? {
                        copies.insert(e.vpn.0, data);
                    }
                }
                let present = copies.len() as u64;
                let m = &s.kernel().cost;
                let cost = m.snapshot_base
                    + m.snapshot_per_present_page * present
                    + m.snapshot_per_mapped_page * mapped_pages;
                let pages = match &mode {
                    SnapshotMode::Shared { store, key } => {
                        let refs = store.lock().expect("store poisoned").intern(key, &copies);
                        SnapshotPages::Shared {
                            store: store.clone(),
                            pages: refs,
                        }
                    }
                    _ => SnapshotPages::Eager(copies),
                };
                (pages, present, cost)
            }
        };
        s.kernel().charge(copy_cost);
        let brk = s.kernel().process(pid)?.mem.brk();
        // (d) Reset memory tracking for the first request.
        tracker.arm(&mut s)?;
        let threads = regs.len();
        let vma_count = vmas.len();
        s.detach()?;

        let duration = sw.lap();
        let snapshot = Snapshot {
            taken_at: kernel.clock.now(),
            regs,
            vmas,
            brk,
            pages,
        };
        let report = SnapshotReport {
            duration,
            present_pages,
            mapped_pages,
            vmas: vma_count,
            threads,
        };
        Ok((snapshot, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrackerKind;
    use crate::track::make_tracker;
    use gh_mem::{Perms, Taint, Touch, VmaKind};
    use gh_proc::Kernel;

    fn machine(pages: u64) -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let pid = k.spawn("f");
        k.run_charged(pid, |p, frames| {
            let r = p.mem.mmap(pages, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(0xFEED), Taint::Clean, frames)
                    .unwrap();
            }
        })
        .unwrap();
        (k, pid)
    }

    #[test]
    fn snapshot_captures_full_state() {
        let (mut k, pid) = machine(32);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snap, report) = Snapshotter::take(&mut k, pid, tracker.as_mut()).unwrap();
        assert_eq!(report.present_pages, 32);
        assert_eq!(snap.present_pages(), 32);
        assert_eq!(report.threads, 1);
        assert!(report.vmas >= 2, "stack + anon");
        assert_eq!(snap.vmas.len(), report.vmas);
        // Contents captured.
        let (vpn, _) = k.process(pid).unwrap().mem.pagemap().next().unwrap();
        assert_eq!(
            snap.page_data(vpn, k.frames()).unwrap().read_word(1),
            0xFEED
        );
        assert!(snap.has_page(vpn));
        // Tracking armed: no page is soft-dirty anymore.
        assert!(k.process(pid).unwrap().mem.soft_dirty_pages().is_empty());
        // Process resumed.
        assert!(k.process(pid).unwrap().is_runnable());
    }

    #[test]
    fn snapshot_duration_scales_with_pages() {
        let (mut k1, p1) = machine(16);
        let (mut k2, p2) = machine(256);
        let mut t1 = make_tracker(TrackerKind::SoftDirty);
        let mut t2 = make_tracker(TrackerKind::SoftDirty);
        let (_, r1) = Snapshotter::take(&mut k1, p1, t1.as_mut()).unwrap();
        let (_, r2) = Snapshotter::take(&mut k2, p2, t2.as_mut()).unwrap();
        assert!(r2.duration > r1.duration);
        assert!(r2.present_pages > r1.present_pages);
    }

    #[test]
    fn snapshot_is_a_deep_copy() {
        let (mut k, pid) = machine(4);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snap, _) = Snapshotter::take(&mut k, pid, tracker.as_mut()).unwrap();
        let (vpn, _) = k.process(pid).unwrap().mem.pagemap().next().unwrap();
        // Mutate the live process: the snapshot must be unaffected.
        k.run_charged(pid, |p, frames| {
            p.mem
                .touch(vpn, Touch::WriteWord(0xBAD), Taint::Clean, frames)
                .unwrap();
        })
        .unwrap();
        assert_eq!(
            snap.page_data(vpn, k.frames()).unwrap().read_word(1),
            0xFEED
        );
    }

    #[test]
    fn memory_bytes_reports_full_pages() {
        let (mut k, pid) = machine(8);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snap, _) = Snapshotter::take(&mut k, pid, tracker.as_mut()).unwrap();
        assert!(snap.memory_bytes() >= 8 * gh_mem::PAGE_SIZE);
    }

    #[test]
    fn shared_snapshots_dedup_across_containers() {
        let store = gh_mem::SnapshotStore::new_handle();
        let mode = |key: &str| SnapshotMode::Shared {
            store: store.clone(),
            key: key.into(),
        };
        let (mut k1, p1) = machine(16);
        let (mut k2, p2) = machine(16);
        let mut t1 = make_tracker(TrackerKind::SoftDirty);
        let mut t2 = make_tracker(TrackerKind::SoftDirty);
        let (s1, r1) = Snapshotter::take_mode(&mut k1, p1, t1.as_mut(), mode("f")).unwrap();
        let (s2, _) = Snapshotter::take_mode(&mut k2, p2, t2.as_mut(), mode("f")).unwrap();
        assert_eq!(s1.present_pages(), s2.present_pages());
        let st = store.lock().unwrap();
        assert_eq!(
            st.live_frames() as u64,
            s1.present_pages(),
            "identical images share every frame"
        );
        assert!((st.dedup_ratio() - 2.0).abs() < 1e-12);
        drop(st);
        // Contents resolve through the store.
        let (vpn, _) = k1.process(p1).unwrap().mem.pagemap().next().unwrap();
        assert_eq!(s1.page_data(vpn, k1.frames()).unwrap().read_word(1), 0xFEED);
        assert_eq!(s2.page_data(vpn, k2.frames()).unwrap().read_word(1), 0xFEED);
        // The per-container footprint is a reference table, not pages.
        assert!(s1.memory_bytes() < 16 * gh_mem::PAGE_SIZE / 10);
        assert!(r1.duration > Nanos::ZERO);
    }

    #[test]
    fn shared_snapshot_costs_like_eager() {
        // Dedup is a space optimization only: the virtual timeline of a
        // shared snapshot is identical to an eager one, so a pool of one
        // stays bit-identical to a lone container.
        let store = gh_mem::SnapshotStore::new_handle();
        let (mut k1, p1) = machine(64);
        let (mut k2, p2) = machine(64);
        let mut t1 = make_tracker(TrackerKind::SoftDirty);
        let mut t2 = make_tracker(TrackerKind::SoftDirty);
        let (_, eager) = Snapshotter::take(&mut k1, p1, t1.as_mut()).unwrap();
        let (_, shared) = Snapshotter::take_mode(
            &mut k2,
            p2,
            t2.as_mut(),
            SnapshotMode::Shared {
                store,
                key: "f".into(),
            },
        )
        .unwrap();
        assert_eq!(eager.duration, shared.duration);
        assert_eq!(eager.present_pages, shared.present_pages);
    }

    #[test]
    fn shared_snapshot_release_returns_references() {
        let store = gh_mem::SnapshotStore::new_handle();
        let (mut k, pid) = machine(8);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (mut snap, _) = Snapshotter::take_mode(
            &mut k,
            pid,
            tracker.as_mut(),
            SnapshotMode::Shared {
                store: store.clone(),
                key: "f".into(),
            },
        )
        .unwrap();
        assert_eq!(store.lock().unwrap().stats().logical_pages, 8);
        let (_, frames) = k.mem_ctx(pid).unwrap();
        snap.release(frames);
        let st = store.lock().unwrap();
        assert_eq!(st.stats().logical_pages, 0);
        assert_eq!(
            st.live_frames(),
            8,
            "base image stays for future containers"
        );
    }

    #[test]
    fn stack_ranges_found() {
        let (mut k, pid) = machine(4);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snap, _) = Snapshotter::take(&mut k, pid, tracker.as_mut()).unwrap();
        let stacks = snap.stack_ranges();
        assert_eq!(stacks.len(), 1);
        assert_eq!(
            stacks[0].len(),
            k.process(pid).unwrap().mem.config().stack_pages
        );
    }
}
