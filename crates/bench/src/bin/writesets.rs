//! §3.1 / §3 aggregate statistics:
//!
//! - write-set sizes: "mean: 8.5% of the mapped address space is
//!   modified, median: 3.3%, 90p: 17%";
//! - restore-time distribution: "a median of 3.7 ms (10p: 0.7 ms,
//!   25p: 1 ms, 75p: 5.4 ms, 90p: 13 ms)" and §2's 95p: 16.1 ms;
//! - headline overheads (abstract): latency median 1.5% / 95p 7%;
//!   throughput median 2.5% / 95p 49.6%.
//!
//! ```text
//! cargo run --release -p gh-bench --bin writesets
//! ```

use gh_bench::{latency_requests, run_latency, run_throughput, write_csv, xput_requests};
use gh_functions::catalog::catalog;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use gh_sim::stats::{median, overhead_percent, percentile};

fn print_dist(name: &str, xs: &[f64], unit: &str) {
    println!(
        "{name}: mean {:.2}{unit}  10p {:.2}  25p {:.2}  median {:.2}  75p {:.2}  90p {:.2}  95p {:.2}",
        xs.iter().sum::<f64>() / xs.len() as f64,
        percentile(xs, 10.0),
        percentile(xs, 25.0),
        median(xs),
        percentile(xs, 75.0),
        percentile(xs, 90.0),
        percentile(xs, 95.0),
    );
}

fn main() {
    let n = latency_requests();
    let reqs = xput_requests();
    let mut table = TextTable::new(&[
        "benchmark",
        "writeset_pct",
        "restore_ms",
        "e2e_overhead_pct",
        "xput_drop_pct",
    ]);

    let mut writesets = Vec::new();
    let mut restores = Vec::new();
    let mut lat_over = Vec::new();
    let mut xput_drop = Vec::new();
    for spec in catalog() {
        let base = run_latency(&spec, StrategyKind::Base, n, 40).expect("base");
        let gh = run_latency(&spec, StrategyKind::Gh, n, 40).expect("gh");
        let bx = run_throughput(&spec, StrategyKind::Base, reqs, 40).expect("base x");
        let gx = run_throughput(&spec, StrategyKind::Gh, reqs, 40).expect("gh x");
        let ws = 100.0 * spec.write_set_fraction();
        let rt = gh.restore_mean_ms();
        let lo = overhead_percent(base.e2e_mean_ms(), gh.e2e_mean_ms());
        let xd = -overhead_percent(bx, gx);
        writesets.push(ws);
        restores.push(rt);
        lat_over.push(lo);
        xput_drop.push(xd);
        table.row_owned(vec![
            spec.name.to_string(),
            format!("{ws:.2}"),
            format!("{rt:.2}"),
            format!("{lo:+.2}"),
            format!("{xd:+.2}"),
        ]);
    }
    println!("== §3.1 write-set sizes (% of mapped address space modified) ==");
    print_dist("write sets", &writesets, "%");
    println!("   paper: mean 8.5%, median 3.3%, 90p 17%\n");

    println!("== §3 restore-time distribution across the 58 benchmarks ==");
    print_dist("restore time", &restores, "ms");
    println!("   paper: median 3.7ms, 10p 0.7, 25p 1, 75p 5.4, 90p 13, 95p 16.1\n");

    println!("== headline overheads (abstract) ==");
    print_dist("E2E latency overhead", &lat_over, "%");
    println!("   paper: median 1.5%, 95p 7%");
    print_dist("throughput reduction", &xput_drop, "%");
    println!("   paper: median 2.5%, 95p 49.6%\n");

    write_csv("writesets", &table);
}
