//! Groundhog: efficient sequential request isolation for FaaS.
//!
//! This is the facade crate of the `groundhog-rs` workspace, a from-scratch
//! Rust reproduction of *Groundhog: Efficient Request Isolation in FaaS*
//! (Alzayat, Mace, Druschel, Garg — EuroSys 2023, arXiv:2205.11458). It
//! re-exports the workspace crates under stable module names:
//!
//! - [`sim`] — virtual clock, calibrated cost model, statistics.
//! - [`mem`] — simulated virtual memory: pages, PTEs, soft-dirty bits, VMAs.
//! - [`proc`] — simulated processes, threads, ptrace, fork/CoW, /proc.
//! - [`runtime`] — language-runtime models (C, Python, Node.js, wasm).
//! - [`functions`] — the 58-benchmark catalog and the §5.2 microbenchmark.
//! - [`core`] — the paper's contribution: snapshot / track / diff / restore
//!   and the Groundhog manager.
//! - [`isolation`] — request-isolation strategies (BASE, GH, GHNOP, FORK,
//!   FAASM, fresh-container).
//! - [`faas`] — an OpenWhisk-like platform model (invoker, containers,
//!   proxy, clients).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use groundhog::faas::platform::{Platform, PlatformConfig};
//! use groundhog::isolation::StrategyKind;
//!
//! let mut platform = Platform::new(PlatformConfig::default());
//! let f = groundhog::functions::catalog::by_name("json (p)").unwrap();
//! let container = platform.deploy(&f, StrategyKind::Gh).unwrap();
//! let outcome = platform.invoke_simple(container, "alice", 4).unwrap();
//! assert!(outcome.response.ok);
//! ```

pub use gh_faas as faas;
pub use gh_functions as functions;
pub use gh_isolation as isolation;
pub use gh_mem as mem;
pub use gh_proc as proc;
pub use gh_runtime as runtime;
pub use gh_sim as sim;
pub use groundhog_core as core;
