//! The platform facade: controller + invoker wiring around containers.
//!
//! End-to-end latency = controller/load-balancer path + invoker-side
//! container time. The controller path is calibrated per benchmark from
//! the paper's BASE columns (E2E − invoker) and is identical across
//! configurations (§5.3.1: "these significant platform overheads are the
//! same in the baseline and Groundhog"). FAASM runs its own platform
//! (§5.3.3), so its controller path is calibrated from the FAASM columns.

use gh_functions::FunctionSpec;
use gh_isolation::{StrategyError, StrategyKind};
use gh_sim::{DetRng, Nanos};
use groundhog_core::GroundhogConfig;

use crate::container::Container;
use crate::fleet::{Fleet, FleetConfig, FleetResult, Pool, RoutePolicy};
use crate::request::{Request, Response};

/// Platform configuration.
#[derive(Clone, Debug)]
pub struct PlatformConfig {
    /// Groundhog configuration used by GH/GHNOP containers.
    pub gh: GroundhogConfig,
    /// Root seed for all deterministic noise.
    pub seed: u64,
    /// Coefficient of variation of the controller-path delay (the paper's
    /// E2E measurements are heavy-tailed; Table 1 shows ±σ of the same
    /// order as the mean for short functions).
    pub platform_cov: f64,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            gh: GroundhogConfig::gh(),
            seed: 0xF00D,
            platform_cov: 0.8,
        }
    }
}

/// Identifier of a deployed container.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ContainerId(pub usize);

/// Identifier of a deployed container pool.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PoolId(pub usize);

/// A completed end-to-end invocation.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The response.
    pub response: Response,
    /// Invoker-measured latency.
    pub invoker: Nanos,
    /// End-to-end latency (client-observed).
    pub e2e: Nanos,
    /// Off-critical-path cleanup after the response.
    pub off_path: Nanos,
}

/// The FaaS platform: containers plus controller-side behaviour.
pub struct Platform {
    cfg: PlatformConfig,
    containers: Vec<Container>,
    pools: Vec<Pool>,
    rng: DetRng,
    next_request: u64,
}

impl Platform {
    /// Creates an empty platform.
    pub fn new(cfg: PlatformConfig) -> Platform {
        let rng = DetRng::new(cfg.seed);
        Platform {
            cfg,
            containers: Vec::new(),
            pools: Vec::new(),
            rng,
            next_request: 1,
        }
    }

    /// Deploys a function in a new warm container under `kind`.
    pub fn deploy(
        &mut self,
        spec: &FunctionSpec,
        kind: StrategyKind,
    ) -> Result<ContainerId, StrategyError> {
        let seed = self.rng.next_u64();
        let c = Container::cold_start(spec, kind, self.cfg.gh.clone(), seed)?;
        self.containers.push(c);
        Ok(ContainerId(self.containers.len() - 1))
    }

    /// Access a deployed container.
    pub fn container(&self, id: ContainerId) -> &Container {
        &self.containers[id.0]
    }

    /// Mutable access to a deployed container.
    pub fn container_mut(&mut self, id: ContainerId) -> &mut Container {
        &mut self.containers[id.0]
    }

    /// Deploys a function as a pool of `size` warm containers under
    /// `kind`, ready to absorb open-loop traffic through the fleet
    /// scheduler.
    pub fn deploy_pool(
        &mut self,
        spec: &FunctionSpec,
        kind: StrategyKind,
        size: usize,
    ) -> Result<PoolId, StrategyError> {
        let seed = self.rng.next_u64();
        let pool = Pool::build(spec, kind, self.cfg.gh.clone(), size, seed)?;
        self.pools.push(pool);
        Ok(PoolId(self.pools.len() - 1))
    }

    /// Access a deployed pool.
    pub fn pool(&self, id: PoolId) -> &Pool {
        &self.pools[id.0]
    }

    /// Mutable access to a deployed pool.
    pub fn pool_mut(&mut self, id: PoolId) -> &mut Pool {
        &mut self.pools[id.0]
    }

    /// Snapshot-memory accounting of a deployed pool: dedup ratio of the
    /// shared store and resident bytes per container.
    pub fn pool_memory(&self, id: PoolId) -> crate::fleet::PoolMemory {
        self.pools[id.0].memory()
    }

    /// Drives `requests` open-loop Poisson arrivals at `offered_rps`
    /// through a deployed pool under `policy`, returning fleet-level
    /// stats (per-container utilization, queue-depth percentiles,
    /// restore-overlap ratio). The pool's state evolves across calls —
    /// containers stay warm.
    pub fn run_fleet(
        &mut self,
        id: PoolId,
        policy: RoutePolicy,
        offered_rps: f64,
        requests: usize,
    ) -> Result<FleetResult, StrategyError> {
        let seed = self.rng.next_u64();
        let cfg = FleetConfig::fixed(policy, offered_rps, seed);
        Fleet::new(cfg).run(&mut self.pools[id.0], requests)
    }

    /// [`Platform::run_fleet`] with fault injection armed: container
    /// deaths, restore failures and retries per `faults`. The fault
    /// plan reuses the fleet run's own seed, so the same platform state
    /// yields the same fault schedule. An inert config degenerates to
    /// exactly [`Platform::run_fleet`].
    pub fn run_fleet_faulty(
        &mut self,
        id: PoolId,
        policy: RoutePolicy,
        offered_rps: f64,
        requests: usize,
        faults: crate::fault::FaultConfig,
    ) -> Result<FleetResult, StrategyError> {
        let seed = self.rng.next_u64();
        let cfg = FleetConfig::fixed(policy, offered_rps, seed);
        let faults = crate::fault::FaultConfig { seed, ..faults };
        Fleet::new(cfg)
            .with_faults(faults)
            .run(&mut self.pools[id.0], requests)
    }

    /// Fresh unique request id.
    pub fn fresh_request_id(&mut self) -> u64 {
        let id = self.next_request;
        self.next_request += 1;
        id
    }

    /// The controller-path delay for one request of `spec` under `kind`.
    fn controller_delay(&mut self, spec: &FunctionSpec, kind: StrategyKind) -> Nanos {
        let base_ms = match (kind, spec.faasm) {
            (StrategyKind::Faasm, Some(f)) => (f.e2e_ms - f.invoker_ms).max(0.0),
            _ => spec.platform_delay_ms(),
        };
        let noise = self.rng.lognormal_factor(self.cfg.platform_cov);
        Nanos::from_millis_f64(base_ms).scale(noise)
    }

    /// Invokes a deployed function end-to-end.
    pub fn invoke(
        &mut self,
        id: ContainerId,
        principal: &str,
        input_kb: u64,
    ) -> Result<Outcome, StrategyError> {
        let rid = self.fresh_request_id();
        let spec = self.containers[id.0].spec.clone();
        let kind = self.containers[id.0].kind();
        let controller = self.controller_delay(&spec, kind);
        let req = Request::new(rid, principal, input_kb);
        let out = self.containers[id.0].invoke(&req)?;
        Ok(Outcome {
            response: out.response,
            invoker: out.invoker_latency,
            e2e: out.invoker_latency + controller,
            off_path: out.off_path,
        })
    }

    /// Convenience: invoke with the function's catalog input size.
    pub fn invoke_simple(
        &mut self,
        id: ContainerId,
        principal: &str,
        _unused: u64,
    ) -> Result<Outcome, StrategyError> {
        let input = self.containers[id.0].spec.input_kb;
        self.invoke(id, principal, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_functions::catalog::by_name;

    #[test]
    fn deploy_and_invoke_roundtrip() {
        let mut p = Platform::new(PlatformConfig::default());
        let spec = by_name("md2html (p)").unwrap();
        let id = p.deploy(&spec, StrategyKind::Gh).unwrap();
        let out = p.invoke_simple(id, "alice", 0).unwrap();
        assert!(out.response.ok);
        assert!(out.e2e > out.invoker, "controller path adds delay");
    }

    #[test]
    fn e2e_tracks_paper_baseline() {
        // Deterministic for the assertion.
        let cfg = PlatformConfig {
            platform_cov: 0.0,
            ..PlatformConfig::default()
        };
        let mut p = Platform::new(cfg);
        let spec = by_name("md2html (p)").unwrap();
        let id = p.deploy(&spec, StrategyKind::Base).unwrap();
        let mut sum = 0.0;
        let n = 20;
        for _ in 0..n {
            sum += p.invoke_simple(id, "a", 0).unwrap().e2e.as_millis_f64();
        }
        let mean = sum / n as f64;
        // Paper: md2html base E2E ≈ 69.4ms.
        assert!((55.0..90.0).contains(&mean), "mean E2E {mean:.1}ms");
    }

    #[test]
    fn request_ids_are_unique() {
        let mut p = Platform::new(PlatformConfig::default());
        let a = p.fresh_request_id();
        let b = p.fresh_request_id();
        assert_ne!(a, b);
    }

    #[test]
    fn pool_deploys_and_serves_fleet_traffic() {
        let mut p = Platform::new(PlatformConfig::default());
        let spec = by_name("fannkuch (p)").unwrap();
        let id = p.deploy_pool(&spec, StrategyKind::Gh, 3).unwrap();
        assert_eq!(p.pool(id).slots.len(), 3);
        let r = p
            .run_fleet(id, RoutePolicy::RestoreAware, 60.0, 90)
            .unwrap();
        assert_eq!(r.completed, 90);
        assert_eq!(r.stats.pool_size, 3);
        // The pool stays warm: a second run reuses the same containers.
        let r2 = p
            .run_fleet(id, RoutePolicy::RestoreAware, 60.0, 30)
            .unwrap();
        assert_eq!(r2.completed, 30);
        // The pool's snapshots dedup in the shared store.
        let mem = p.pool_memory(id);
        assert!(mem.dedup_ratio > 2.5, "got {:.2}", mem.dedup_ratio);
        // Per-run stats are deltas: run 2 reports only its own 30
        // requests (slot counters stay cumulative underneath).
        assert_eq!(
            r2.stats.per_container.iter().map(|c| c.served).sum::<u64>(),
            30
        );
        assert!(
            (r.utilization - r2.utilization).abs() < 0.2,
            "same load, same per-run utilization: {:.2} vs {:.2}",
            r.utilization,
            r2.utilization
        );
        assert_eq!(
            p.pool(id).slots.iter().map(|s| s.served).sum::<u64>(),
            120,
            "both runs served by the same pool"
        );
    }

    #[test]
    fn faulty_fleet_run_injects_and_accounts() {
        let mut p = Platform::new(PlatformConfig::default());
        let spec = by_name("fannkuch (p)").unwrap();
        let id = p.deploy_pool(&spec, StrategyKind::Gh, 2).unwrap();
        let faults = crate::fault::FaultConfig::deaths(0, 0.1);
        let r = p
            .run_fleet_faulty(id, RoutePolicy::RoundRobin, 60.0, 200, faults)
            .unwrap();
        assert!(r.stats.faults.deaths > 0, "10% deaths over 200 requests");
        assert_eq!(
            r.completed as u64 + r.stats.faults.abandoned,
            200,
            "every request completes or is abandoned"
        );
    }

    #[test]
    fn faasm_uses_its_own_platform_delay() {
        let cfg = PlatformConfig {
            platform_cov: 0.0,
            ..PlatformConfig::default()
        };
        let mut p = Platform::new(cfg);
        let spec = by_name("atax (c)").unwrap();
        let base = p.deploy(&spec, StrategyKind::Base).unwrap();
        let faasm = p.deploy(&spec, StrategyKind::Faasm).unwrap();
        let be = p.invoke_simple(base, "a", 0).unwrap();
        let fe = p.invoke_simple(faasm, "a", 0).unwrap();
        // Faasm's platform is lighter (Table 1: atax E2E 30.3 vs 68.7).
        assert!(fe.e2e < be.e2e);
    }
}
