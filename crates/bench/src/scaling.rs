//! Host-side scaling measurements for the extent-based bookkeeping.
//!
//! Measures real wall-clock (not virtual time) of the three
//! bookkeeping-bound operations — snapshot **capture**, dirty **scan**
//! (tracker collect) and restore **plan-build** — at 64k / 256k / 1M
//! mapped pages with a 1% write set, for both the extent-based
//! production path and a retained emulation of the per-page legacy path
//! (full pagemap walk + `BTreeMap`/`BTreeSet` construction, exactly the
//! pre-extent algorithms).
//!
//! Gate design: raw ns/page is machine-dependent, so feeding it to the
//! 10% regression gate would fail on any CI runner slower or faster
//! than the machine that wrote the baseline. The gated metric family is
//! therefore **machine-independent**: legacy/new speedup ratios
//! (same-machine quotients), an O(dirty) growth check across sizes, and
//! the deterministic simulated cost under extent charging. The raw
//! ns/page readings are published as `info_`-prefixed metrics (written
//! to `BENCH_fleet.json` and `results/scaling.csv`, exempt from the
//! gate) for humans and trend dashboards.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use gh_mem::{FrameData, PageRange, Perms, Taint, Touch, VmaKind, Vpn};
use gh_proc::{Kernel, Pid, PtraceSession};
use gh_sim::report::TextTable;
use gh_sim::{ChargeModel, ScanShape};
use groundhog_core::plan::RestorePlanner;
use groundhog_core::snapshot::Snapshotter;
use groundhog_core::track::{make_tracker, DirtyReport, MemoryTracker};
use groundhog_core::{GroundhogConfig, LayoutDiff, TrackerKind};

/// One measured size point.
pub struct SizePoint {
    /// Mapped/present pages.
    pub pages: u64,
    /// Dirty pages (1% of mapped, scattered).
    pub dirty: u64,
    /// ns/page, new extent-based path.
    pub capture_ns_per_page: f64,
    pub scan_ns_per_page: f64,
    pub plan_ns_per_page: f64,
    /// ns/page, legacy per-page emulation.
    pub legacy_capture_ns_per_page: f64,
    pub legacy_scan_ns_per_page: f64,
    pub legacy_plan_ns_per_page: f64,
    /// Wall-clock totals (for ratio math), nanoseconds.
    pub capture_ns: f64,
    pub scan_ns: f64,
    pub plan_ns: f64,
    pub legacy_capture_ns: f64,
    pub legacy_scan_ns: f64,
    pub legacy_plan_ns: f64,
}

/// The whole family: per-size points plus simulated costs.
pub struct ScalingReport {
    pub points: Vec<SizePoint>,
    /// Scan wall-clock at 64k mapped pages with the *fixed* 655-page
    /// dirty set (the growth probe's rig — separate from the 1%-of-own-
    /// size points so the speedup ratios stay internally consistent).
    pub fixed_scan_ns_64k: f64,
    /// Scan wall-clock at 1M mapped pages, same fixed dirty set.
    pub fixed_scan_ns_1m: f64,
    /// Simulated scan cost at 1M pages / 1% dirty, µs, extent charging.
    pub sim_scan_us_extent_1m: f64,
    /// Same shape under paper-parity charging, µs.
    pub sim_scan_us_paper_1m: f64,
}

impl ScalingReport {
    fn at(&self, pages: u64) -> &SizePoint {
        self.points
            .iter()
            .find(|p| p.pages == pages)
            .expect("size point measured")
    }

    /// Legacy / new wall-clock ratio for capture + scan + plan-build at
    /// 1M pages (the tentpole's ≥5x claim).
    pub fn capture_plan_speedup_1m(&self) -> f64 {
        let p = self.at(1 << 20);
        (p.legacy_capture_ns + p.legacy_scan_ns + p.legacy_plan_ns)
            / (p.capture_ns + p.scan_ns + p.plan_ns).max(1.0)
    }

    /// Legacy / new capture-only ratio at 1M pages.
    pub fn capture_speedup_1m(&self) -> f64 {
        let p = self.at(1 << 20);
        p.legacy_capture_ns / p.capture_ns.max(1.0)
    }

    /// Scan-time growth from 64k to 1M mapped pages at a fixed dirty
    /// count: ~1 for the O(dirty) index scan, ~16 for a pagemap walk.
    pub fn scan_growth_64k_to_1m(&self) -> f64 {
        self.fixed_scan_ns_1m / self.fixed_scan_ns_64k.max(1.0)
    }
}

/// A process with `pages` present pages in one big anonymous region,
/// snapshotted (tracking armed), with `dirty` scattered pages rewritten.
fn rig(pages: u64, dirty: u64) -> (Kernel, Pid, PageRange, Box<dyn MemoryTracker>) {
    let mut kernel = Kernel::boot();
    let pid = kernel.spawn("scaling");
    let region = kernel
        .run_charged(pid, |p, frames| {
            let r = p.mem.mmap(pages, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(vpn.0), Taint::Clean, frames)
                    .unwrap();
            }
            r
        })
        .unwrap()
        .0;
    let mut tracker = make_tracker(TrackerKind::SoftDirty);
    // Arm tracking without building a snapshot we would only throw away.
    {
        let mut s = PtraceSession::attach(&mut kernel, pid).unwrap();
        s.interrupt_all().unwrap();
        tracker.arm(&mut s).unwrap();
        s.detach().unwrap();
    }
    // 1% write set, scattered uniformly (stride 100 ⇒ every dirty page
    // splits the armed run: extents = O(dirty), the worst honest case).
    let stride = (pages / dirty).max(1);
    kernel
        .run_charged(pid, |p, frames| {
            for i in 0..dirty {
                p.mem
                    .touch(
                        Vpn(region.start.0 + i * stride),
                        Touch::WriteWord(!i),
                        Taint::Clean,
                        frames,
                    )
                    .unwrap();
            }
        })
        .unwrap();
    (kernel, pid, region, tracker)
}

/// Best-of-`iters` wall-clock of `f`, in nanoseconds.
fn best_of(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

/// The legacy eager capture: walk the pagemap page by page and clone
/// every present page's contents into a per-page map (the pre-extent
/// `Snapshotter` algorithm, verbatim in shape).
fn legacy_capture(kernel: &Kernel, pid: Pid) -> BTreeMap<u64, FrameData> {
    let proc = kernel.process(pid).unwrap();
    let mut copies = BTreeMap::new();
    for (vpn, pte) in proc.mem.pagemap() {
        copies.insert(vpn.0, kernel.frames().data(pte.frame).clone());
    }
    copies
}

/// The legacy dirty scan: a full pagemap walk materializing one entry
/// per present page, then filtering the dirty ones.
fn legacy_scan(kernel: &Kernel, pid: Pid) -> (Vec<Vpn>, Vec<(Vpn, bool)>) {
    let proc = kernel.process(pid).unwrap();
    let entries: Vec<(Vpn, bool)> = proc
        .mem
        .pagemap()
        .map(|(vpn, pte)| (vpn, pte.soft_dirty()))
        .collect();
    let dirty: Vec<Vpn> = entries
        .iter()
        .filter(|(_, sd)| *sd)
        .map(|(v, _)| *v)
        .collect();
    (dirty, entries)
}

/// The legacy plan-build set math: per-page `BTreeSet`s for the present
/// set, the snapshot ∖ present term and run grouping (the pre-extent
/// `RestorePlanner` algorithm).
fn legacy_plan(
    snapshot_vpns: &[u64],
    dirty: &[Vpn],
    entries: &[(Vpn, bool)],
) -> (u64, Vec<PageRange>) {
    let snapshot: BTreeSet<u64> = snapshot_vpns.iter().copied().collect();
    let present: BTreeSet<u64> = entries.iter().map(|(v, _)| v.0).collect();
    let mut restore_set: BTreeSet<u64> = dirty
        .iter()
        .map(|v| v.0)
        .filter(|v| snapshot.contains(v))
        .collect();
    for &v in &snapshot {
        if !present.contains(&v) {
            restore_set.insert(v);
        }
    }
    let sorted: Vec<u64> = restore_set.into_iter().collect();
    let runs = groundhog_core::plan::group_ranges(&sorted);
    (sorted.len() as u64, runs)
}

/// Measures one size point.
fn measure(pages: u64) -> SizePoint {
    let dirty = (pages / 100).max(1);
    let (mut kernel, pid, _region, mut tracker) = rig(pages, dirty);
    let cfg = GroundhogConfig::gh();

    // --- scan ---
    let scan_iters = if pages >= 1 << 20 { 3 } else { 5 };
    let mut report: Option<DirtyReport> = None;
    let scan_ns = best_of(scan_iters, || {
        let mut s = PtraceSession::attach(&mut kernel, pid).unwrap();
        s.interrupt_all().unwrap();
        report = Some(tracker.collect(&mut s).unwrap());
        s.detach().unwrap();
    });
    let report = report.unwrap();
    let legacy_scan_ns = best_of(scan_iters, || {
        std::hint::black_box(legacy_scan(&kernel, pid));
    });
    let (legacy_dirty, legacy_entries) = legacy_scan(&kernel, pid);
    assert_eq!(legacy_dirty.len() as u64, dirty, "scan agreement");
    assert_eq!(report.dirty.len() as u64, dirty, "scan agreement");

    // --- capture (snapshot take) + plan-build ---
    let mut snapshot: Option<groundhog_core::snapshot::Snapshot> = None;
    let capture_ns = best_of(scan_iters, || {
        if let Some(mut old) = snapshot.take() {
            let (_, frames) = kernel.mem_ctx(pid).unwrap();
            old.release(frames);
        }
        let mut t = make_tracker(TrackerKind::SoftDirty);
        let (snap, _) = Snapshotter::take(&mut kernel, pid, t.as_mut()).unwrap();
        snapshot = Some(snap);
    });
    let snapshot = snapshot.unwrap();
    let legacy_capture_ns = best_of(scan_iters, || {
        std::hint::black_box(legacy_capture(&kernel, pid));
    });

    let diff = {
        let proc = kernel.process(pid).unwrap();
        LayoutDiff::compute(
            &snapshot.vmas,
            snapshot.brk,
            &proc.mem.maps(),
            proc.mem.brk(),
        )
    };
    let plan_ns = best_of(scan_iters, || {
        std::hint::black_box(RestorePlanner::build(&snapshot, &report, &diff, &cfg));
    });
    let snapshot_vpns = snapshot.page_vpns();
    let legacy_plan_ns = best_of(scan_iters, || {
        std::hint::black_box(legacy_plan(&snapshot_vpns, &legacy_dirty, &legacy_entries));
    });

    let per = |ns: f64| ns / pages as f64;
    SizePoint {
        pages,
        dirty,
        capture_ns_per_page: per(capture_ns),
        scan_ns_per_page: per(scan_ns),
        plan_ns_per_page: per(plan_ns),
        legacy_capture_ns_per_page: per(legacy_capture_ns),
        legacy_scan_ns_per_page: per(legacy_scan_ns),
        legacy_plan_ns_per_page: per(legacy_plan_ns),
        capture_ns,
        scan_ns,
        plan_ns,
        legacy_capture_ns,
        legacy_scan_ns,
        legacy_plan_ns,
    }
}

/// Runs the family at 64k / 256k / 1M pages (each with a 1%-of-own-size
/// write set), plus a separate fixed-dirty growth probe: the scan is
/// re-measured at 64k and 1M with the *same* absolute dirty count so
/// the growth ratio isolates the mapped-size dependence.
pub fn run() -> ScalingReport {
    let points: Vec<SizePoint> = [1u64 << 16, 1 << 18, 1 << 20]
        .iter()
        .map(|&p| measure(p))
        .collect();
    // Fixed-dirty growth probe: measure the scan at 64k and 1M with the
    // same absolute dirty count (1% of 64k = 655 pages). Kept separate
    // from the points above — overwriting their 1%-of-own-size scan
    // times would make the speedup ratios and the published ns/page
    // columns mix two different rigs.
    let fixed_dirty = (1u64 << 16) / 100;
    let fixed_scan = |pages: u64| -> f64 {
        let (mut kernel, pid, _r, mut tracker) = rig(pages, fixed_dirty);
        best_of(5, || {
            let mut s = PtraceSession::attach(&mut kernel, pid).unwrap();
            s.interrupt_all().unwrap();
            std::hint::black_box(tracker.collect(&mut s).unwrap());
            s.detach().unwrap();
        })
    };
    let fixed_scan_ns_64k = fixed_scan(1 << 16);
    let fixed_scan_ns_1m = fixed_scan(1 << 20);

    // Deterministic simulated costs at the 1M/1% shape.
    let shape = ScanShape {
        mapped_pages: 1 << 20,
        vmas: 3,
        extents: 2 * ((1u64 << 20) / 100) + 3,
        dirty_pages: (1 << 20) / 100,
    };
    let mut extent_model = gh_sim::CostModel::calibrated();
    extent_model.charge_model = ChargeModel::ExtentDirty;
    let paper_model = gh_sim::CostModel::calibrated();
    ScalingReport {
        points,
        fixed_scan_ns_64k,
        fixed_scan_ns_1m,
        sim_scan_us_extent_1m: extent_model.dirty_scan_cost(shape).as_millis_f64() * 1e3,
        sim_scan_us_paper_1m: paper_model.dirty_scan_cost(shape).as_millis_f64() * 1e3,
    }
}

/// Renders the per-size table (stdout + `results/scaling.csv`).
pub fn render(report: &ScalingReport) -> TextTable {
    let headers = [
        "pages",
        "dirty",
        "capture ns/pg",
        "scan ns/pg",
        "plan ns/pg",
        "legacy capture",
        "legacy scan",
        "legacy plan",
    ];
    let mut table = TextTable::new(&headers);
    for p in &report.points {
        table.row_owned(vec![
            p.pages.to_string(),
            p.dirty.to_string(),
            format!("{:.2}", p.capture_ns_per_page),
            format!("{:.3}", p.scan_ns_per_page),
            format!("{:.3}", p.plan_ns_per_page),
            format!("{:.2}", p.legacy_capture_ns_per_page),
            format!("{:.3}", p.legacy_scan_ns_per_page),
            format!("{:.3}", p.legacy_plan_ns_per_page),
        ]);
    }
    table
}
