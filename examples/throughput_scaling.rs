//! §5.3.4 in miniature: Groundhog throughput scales linearly with cores,
//! because each core runs an independent container + manager pair.
//!
//! ```text
//! cargo run --release --example throughput_scaling
//! ```

use groundhog::core::GroundhogConfig;
use groundhog::faas::client::throughput_scaling;
use groundhog::functions::catalog;
use groundhog::isolation::StrategyKind;

fn main() {
    let spec = catalog::by_name("telco (p)").expect("in catalog");
    println!("throughput scaling for {} (mean ± σ over 3 runs):\n", spec.name);
    println!("{:>6} {:>14} {:>14}", "cores", "base (r/s)", "GH (r/s)");
    let mut gh_per_core = Vec::new();
    for cores in 1..=4 {
        let (base, bs) = throughput_scaling(
            &spec,
            StrategyKind::Base,
            GroundhogConfig::gh(),
            cores,
            30,
            3,
            7,
        )
        .unwrap();
        let (gh, gs) = throughput_scaling(
            &spec,
            StrategyKind::Gh,
            GroundhogConfig::gh(),
            cores,
            30,
            3,
            7,
        )
        .unwrap();
        gh_per_core.push(gh);
        println!("{cores:>6} {base:>9.1}±{bs:<4.1} {gh:>9.1}±{gs:<4.1}");
    }
    let scaling = gh_per_core[3] / gh_per_core[0];
    println!("\nGH scaling 1→4 cores: {scaling:.2}x (paper: nearly linear)");
    assert!(scaling > 3.2, "must be close to linear");
}
