//! The pool-shared snapshot store (§5.5 taken fleet-wide).
//!
//! Every container of a function pool holds a clean-state snapshot, and
//! those snapshots are near-identical: the runtime image, the library
//! text, the warmed heap — everything except a handful of pages carrying
//! per-container state (the in-memory runtime clock, allocator
//! bookkeeping). A pool that gives each container a private eager
//! snapshot therefore pays `pool_size ×` the snapshot footprint for data
//! that is overwhelmingly shared.
//!
//! A [`SnapshotStore`] fixes that: it owns one [`FrameTable`] shared by
//! the whole pool. The first container of a function *interns* its
//! clean-state pages, which become the refcounted **base image** for that
//! function. Every subsequent container dedups against the base
//! page-by-page with [`FrameData::logical_eq`]: an equal page takes an
//! [`FrameTable::incref`] on the base frame (no new storage), a differing
//! page allocates a private delta frame. Pool memory then scales with
//! `base + Σ per-container deltas` instead of `pool_size × snapshot`.
//!
//! The store is handed around as a [`StoreHandle`]
//! (`Arc<Mutex<SnapshotStore>>`): containers live on separate simulated
//! kernels, so the store is the one deliberately shared piece of manager
//! state in a pool.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use crate::addr::Vpn;
use crate::frame::{FrameData, FrameId, FrameRuns, FrameTable};
use crate::taint::Taint;

/// Shared handle to a pool's snapshot store.
pub type StoreHandle = Arc<Mutex<SnapshotStore>>;

/// Space-accounting counters of a [`SnapshotStore`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Pages referenced by all live interned snapshots (with multiplicity).
    pub logical_pages: u64,
    /// Pages that dedup'd against an existing base frame (same vpn, same
    /// content).
    pub dedup_hits: u64,
    /// Pages that dedup'd through the content-hash index: identical
    /// content found under a *different* vpn or in another snapshot's
    /// delta — sharing the base-image match would miss.
    pub hash_hits: u64,
    /// Pages that needed their own frame (base establishment or delta).
    pub dedup_misses: u64,
}

/// A function's base image: the first interned snapshot's pages, kept
/// alive for the store's lifetime so later containers can dedup against
/// it even after the founding container retires, plus a content-hash
/// index over every frame ever interned under the key.
#[derive(Debug, Default)]
struct BaseImage {
    pages: BTreeMap<u64, FrameId>,
    /// `FrameData::logical_hash` → candidate frames. Entries are pruned
    /// lazily: a freed delta frame is dropped the next time its bucket
    /// is consulted; a recycled slot is rejected by the `logical_eq`
    /// verification every lookup performs.
    by_hash: HashMap<u64, Vec<FrameId>>,
}

/// A deduplicating, refcounted page store shared by one container pool.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    frames: FrameTable,
    bases: BTreeMap<String, BaseImage>,
    stats: StoreStats,
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> SnapshotStore {
        SnapshotStore::default()
    }

    /// Creates an empty store behind a shareable handle.
    pub fn new_handle() -> StoreHandle {
        Arc::new(Mutex::new(SnapshotStore::new()))
    }

    /// Interns one page under `key`'s (already established) image,
    /// returning an owned reference to a store frame with the same
    /// logical contents. Dedup order: the base image's same-vpn frame
    /// first (the overwhelmingly common hit), then the key's
    /// content-hash index — which catches identical content at a
    /// *different* vpn and identical **delta** pages across snapshots —
    /// and only then a fresh allocation. Each step is O(1) in the pool
    /// size: no candidate list grows with the number of snapshots
    /// interned, because equal content keeps hitting the same frame.
    fn intern_page(&mut self, key: &str, vpn: u64, data: &FrameData) -> FrameId {
        self.stats.logical_pages += 1;
        let base = self.bases.get_mut(key).expect("base established");
        if let Some(&id) = base.pages.get(&vpn) {
            if self.frames.data(id).logical_eq(data) {
                self.stats.dedup_hits += 1;
                self.frames.incref(id);
                return id;
            }
        }
        let hash = data.logical_hash();
        if let Some(candidates) = base.by_hash.get_mut(&hash) {
            // Lazily prune freed frames, then verify content: a hash
            // collision or a recycled frame slot fails `logical_eq` and
            // falls through to allocation.
            candidates.retain(|&id| self.frames.is_live(id));
            if let Some(&id) = candidates
                .iter()
                .find(|&&id| self.frames.data(id).logical_eq(data))
            {
                self.stats.hash_hits += 1;
                self.frames.incref(id);
                return id;
            }
        }
        self.stats.dedup_misses += 1;
        let id = self.frames.alloc(data.clone(), Taint::Clean);
        let base = self.bases.get_mut(key).expect("base established");
        base.by_hash.entry(hash).or_default().push(id);
        id
    }

    /// Extends `key`'s base image (creating it if needed) with the
    /// founding container's pages. The base holds one reference per
    /// frame for the store's lifetime; the caller gets a second.
    fn establish_base(
        &mut self,
        key: &str,
        pages: impl Iterator<Item = (u64, FrameData)>,
    ) -> Vec<(u64, FrameId)> {
        self.bases.entry(key.to_string()).or_default();
        let mut refs = Vec::new();
        for (vpn, data) in pages {
            let hash = data.logical_hash();
            let id = self.frames.alloc(data, Taint::Clean);
            self.frames.incref(id);
            let base = self.bases.get_mut(key).expect("just ensured");
            base.pages.insert(vpn, id);
            base.by_hash.entry(hash).or_default().push(id);
            refs.push((vpn, id));
            self.stats.dedup_misses += 1;
            self.stats.logical_pages += 1;
        }
        refs
    }

    /// Interns one container's clean-state pages under the function key
    /// `key`, returning the per-container reference table (vpn → shared
    /// frame). The first call for a key establishes the base image;
    /// later calls dedup page-by-page by logical content — same-vpn
    /// base pages first, then the content-hash index (so identical
    /// delta pages dedup across snapshots too).
    ///
    /// The returned references are owned by the caller and must be given
    /// back via [`SnapshotStore::release`].
    pub fn intern(
        &mut self,
        key: &str,
        pages: &BTreeMap<u64, FrameData>,
    ) -> BTreeMap<u64, FrameId> {
        if !self.bases.contains_key(key) {
            return self
                .establish_base(key, pages.iter().map(|(&v, d)| (v, d.clone())))
                .into_iter()
                .collect();
        }
        pages
            .iter()
            .map(|(&vpn, data)| (vpn, self.intern_page(key, vpn, data)))
            .collect()
    }

    /// Interns a run-based capture by reference: page contents are read
    /// straight out of the process's frame table and copied into the
    /// store only on a dedup miss. Returns the per-container reference
    /// runs (store-table frames), owned by the caller and released via
    /// [`SnapshotStore::release_runs`].
    pub fn intern_refs(
        &mut self,
        key: &str,
        runs: &[(Vpn, Vec<FrameId>)],
        frames: &FrameTable,
    ) -> FrameRuns {
        let established = self.bases.contains_key(key);
        let mut out = Vec::with_capacity(runs.len());
        if !established {
            for (start, ids) in runs {
                let refs = self.establish_base(
                    key,
                    ids.iter()
                        .enumerate()
                        .map(|(i, &id)| (start.0 + i as u64, frames.data(id).clone())),
                );
                out.push((*start, refs.into_iter().map(|(_, id)| id).collect()));
            }
        } else {
            for (start, ids) in runs {
                let refs: Vec<FrameId> = ids
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| self.intern_page(key, start.0 + i as u64, frames.data(id)))
                    .collect();
                out.push((*start, refs));
            }
        }
        FrameRuns::new(out)
    }

    /// Reads an interned page's contents.
    pub fn data(&self, id: FrameId) -> &FrameData {
        self.frames.data(id)
    }

    /// Releases one container's reference table (the inverse of
    /// [`SnapshotStore::intern`]). Base frames stay resident until the
    /// store itself drops.
    pub fn release(&mut self, refs: &BTreeMap<u64, FrameId>) {
        for &id in refs.values() {
            self.frames.decref(id);
        }
        self.stats.logical_pages = self.stats.logical_pages.saturating_sub(refs.len() as u64);
    }

    /// Releases one container's reference runs (the inverse of
    /// [`SnapshotStore::intern_refs`]).
    pub fn release_runs(&mut self, refs: &mut FrameRuns) {
        let n = refs.total_pages();
        refs.release(&mut self.frames);
        self.stats.logical_pages = self.stats.logical_pages.saturating_sub(n);
    }

    /// The shared frame table (for accounting/tests).
    pub fn frames(&self) -> &FrameTable {
        &self.frames
    }

    /// Space counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Unique resident frames across all interned snapshots.
    pub fn live_frames(&self) -> usize {
        self.frames.live()
    }

    /// Bytes of manager memory the unique frames occupy (one page each).
    pub fn resident_bytes(&self) -> u64 {
        self.frames.resident_bytes()
    }

    /// Deduplication ratio: logical pages referenced by live snapshots per
    /// unique resident frame. `1.0` for an empty store or a pool of one;
    /// approaches the pool size when containers share their whole image.
    pub fn dedup_ratio(&self) -> f64 {
        let live = self.frames.live();
        if live == 0 || self.stats.logical_pages == 0 {
            return 1.0;
        }
        self.stats.logical_pages as f64 / live as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    fn image(seed: u64, pages: u64) -> BTreeMap<u64, FrameData> {
        (0..pages)
            .map(|v| (v, FrameData::Pattern(seed ^ v)))
            .collect()
    }

    #[test]
    fn first_intern_establishes_base() {
        let mut s = SnapshotStore::new();
        let refs = s.intern("f", &image(7, 16));
        assert_eq!(refs.len(), 16);
        assert_eq!(s.live_frames(), 16, "base only, no duplicates");
        assert_eq!(s.stats().logical_pages, 16);
        assert_eq!(s.dedup_ratio(), 1.0, "a pool of one shares nothing");
    }

    #[test]
    fn identical_snapshots_dedup_fully() {
        let mut s = SnapshotStore::new();
        let a = s.intern("f", &image(7, 16));
        let b = s.intern("f", &image(7, 16));
        assert_eq!(s.live_frames(), 16, "second container adds no frames");
        assert_eq!(s.resident_bytes(), 16 * PAGE_SIZE);
        assert!((s.dedup_ratio() - 2.0).abs() < 1e-12);
        for (va, vb) in a.values().zip(b.values()) {
            assert_eq!(va, vb, "shared frames are the same ids");
        }
    }

    #[test]
    fn differing_pages_get_private_deltas() {
        let mut s = SnapshotStore::new();
        s.intern("f", &image(7, 16));
        let mut second = image(7, 16);
        second.insert(3, FrameData::Pattern(999));
        second.insert(20, FrameData::Zero); // page the base never had
        let refs = s.intern("f", &second);
        assert_eq!(refs.len(), 17);
        assert_eq!(s.live_frames(), 18, "base 16 + delta + new page");
        assert_eq!(s.stats().dedup_hits, 15);
    }

    #[test]
    fn distinct_functions_do_not_share() {
        let mut s = SnapshotStore::new();
        s.intern("f", &image(7, 8));
        s.intern("g", &image(7, 8));
        // Same contents but different keys: bases are separate.
        assert_eq!(s.live_frames(), 16);
    }

    #[test]
    fn release_drops_references_but_keeps_base() {
        let mut s = SnapshotStore::new();
        let a = s.intern("f", &image(7, 8));
        let b = s.intern("f", &image(7, 8));
        s.release(&a);
        s.release(&b);
        assert_eq!(s.live_frames(), 8, "the base image stays resident");
        assert_eq!(s.stats().logical_pages, 0);
        assert_eq!(s.dedup_ratio(), 1.0);
    }

    #[test]
    fn identical_deltas_dedup_across_snapshots_via_hash() {
        let mut s = SnapshotStore::new();
        s.intern("f", &image(7, 16));
        // Two later containers carry the same delta page (a per-container
        // value that happens to repeat): the second must share the
        // first's delta frame through the content-hash index.
        let mut second = image(7, 16);
        second.insert(3, FrameData::Pattern(999));
        let mut third = image(7, 16);
        third.insert(3, FrameData::Pattern(999));
        s.intern("f", &second);
        let live_after_second = s.live_frames();
        s.intern("f", &third);
        assert_eq!(
            s.live_frames(),
            live_after_second,
            "the repeated delta must not allocate again"
        );
        assert_eq!(s.stats().hash_hits, 1);
        // And the dedup ratio reflects the cross-snapshot sharing.
        // 48 logical pages over 16 base + 1 delta frames.
        assert!(s.dedup_ratio() > 2.8, "3 containers share ~everything");
    }

    #[test]
    fn hash_dedup_catches_content_moved_to_another_vpn() {
        let mut s = SnapshotStore::new();
        s.intern("f", &image(7, 8));
        // The second container has page 3's content at vpn 100 (e.g. the
        // allocator placed the same object elsewhere).
        let mut moved = image(7, 8);
        moved.remove(&3);
        moved.insert(100, FrameData::Pattern(7 ^ 3));
        let refs = s.intern("f", &moved);
        assert_eq!(s.live_frames(), 8, "moved content shares the base frame");
        assert_eq!(refs[&100], s.intern("f", &image(7, 8))[&3]);
        assert_eq!(s.stats().hash_hits, 1);
    }

    #[test]
    fn freed_delta_frames_are_pruned_from_the_hash_index() {
        let mut s = SnapshotStore::new();
        s.intern("f", &image(7, 4));
        let mut with_delta = image(7, 4);
        with_delta.insert(9, FrameData::Pattern(42));
        let refs = s.intern("f", &with_delta);
        let live = s.live_frames();
        s.release(&refs); // delta frame freed (only the caller held it)
        assert_eq!(s.live_frames(), live - 1);
        // Interning the same delta again must allocate a fresh frame —
        // the stale index entry is pruned, not resurrected.
        let refs2 = s.intern("f", &with_delta);
        assert!(s.frames().is_live(refs2[&9]));
        assert!(s.data(refs2[&9]).logical_eq(&FrameData::Pattern(42)));
    }

    #[test]
    fn intern_refs_matches_intern() {
        let mut table = FrameTable::new();
        let ids: Vec<crate::frame::FrameId> = (0..8u64)
            .map(|v| table.alloc(FrameData::Pattern(7 ^ v), crate::taint::Taint::Clean))
            .collect();
        let runs = vec![(crate::addr::Vpn(0), ids)];
        let mut s = SnapshotStore::new();
        let a = s.intern_refs("f", &runs, &table);
        assert_eq!(a.total_pages(), 8);
        assert_eq!(s.live_frames(), 8);
        // A second, identical capture dedups fully.
        let mut b = s.intern_refs("f", &runs, &table);
        assert_eq!(s.live_frames(), 8);
        assert_eq!(s.stats().dedup_hits, 8);
        for (vpn, id) in b.iter() {
            assert!(s.data(id).logical_eq(&FrameData::Pattern(7 ^ vpn.0)));
        }
        s.release_runs(&mut b);
        assert_eq!(s.stats().logical_pages, 8);
    }

    #[test]
    fn data_resolves_logical_contents() {
        let mut s = SnapshotStore::new();
        let refs = s.intern("f", &image(3, 4));
        for (&vpn, &id) in &refs {
            assert!(s.data(id).logical_eq(&FrameData::Pattern(3 ^ vpn)));
        }
    }
}
