//! The Groundhog manager: lifecycle orchestration and request gating.
//!
//! The manager process "interposes between the FaaS platform and the
//! process executing the function" (§4.1). Its job here:
//!
//! - drive the container through Fig. 1's life cycle (initialize → dummy
//!   warm-up → snapshot → serve/restore loop);
//! - **enforce** request isolation (§4.5): a request may only reach the
//!   function process when the manager has proof the process is clean —
//!   [`Manager::begin_request`] refuses otherwise, and the platform layer
//!   buffers requests until [`Manager::is_ready`];
//! - restore *between* activations, off the request critical path (§4.4);
//! - optionally skip rollback between consecutive requests of the same
//!   principal (§4.4's mutually-trusting-callers optimization), which
//!   defers the restore decision to the next request's arrival.

use gh_mem::StoreHandle;
use gh_proc::{Kernel, Pid};
use gh_sim::Nanos;

use crate::config::{GroundhogConfig, RestoreMode};
use crate::error::GhError;
use crate::restore::{RestoreReport, Restorer};
use crate::snapshot::{Snapshot, SnapshotMode, SnapshotReport, Snapshotter};
use crate::track::{make_tracker, MemoryTracker};

/// Manager lifecycle states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ManagerState {
    /// Process spawned; runtime initializing; no snapshot yet.
    Initializing,
    /// Snapshot taken; process clean; a request may start.
    Ready,
    /// A request is executing in the function process.
    Executing,
    /// Request finished; rollback pending (only reachable with
    /// `skip_same_principal`, which defers restores).
    NeedsRestore,
}

impl ManagerState {
    fn name(self) -> &'static str {
        match self {
            ManagerState::Initializing => "Initializing",
            ManagerState::Ready => "Ready",
            ManagerState::Executing => "Executing",
            ManagerState::NeedsRestore => "NeedsRestore",
        }
    }
}

/// Counters the manager keeps across its lifetime.
#[derive(Clone, Debug, Default)]
pub struct ManagerStats {
    /// Requests admitted.
    pub requests: u64,
    /// Restores performed.
    pub restores: u64,
    /// Restores skipped via the same-principal optimization.
    pub skipped_restores: u64,
    /// Sum of restore durations (off-critical-path time).
    pub total_restore_time: Nanos,
    /// Fresh restore obligations armed for first-touch fault-in (lazy
    /// restore mode). Re-arming a page whose obligation is still
    /// pending does not count again, so the conservation law
    /// `deferred = faulted + drained + dropped + pending` is exact.
    pub deferred_pages: u64,
    /// Deferred pages written back by the background drain.
    pub lazy_drained_pages: u64,
    /// Obligations discarded because the function dropped their mapping
    /// (`munmap`/`madvise`/brk shrink) before touching them — eager
    /// restoration would have copied those pages only to lose them the
    /// same way.
    pub lazy_dropped_pages: u64,
    /// Virtual time the background drain consumed — out of idle gaps,
    /// never the critical path.
    pub lazy_drain_time: Nanos,
    /// The snapshot report, once taken.
    pub snapshot: Option<SnapshotReport>,
    /// Most recent restore report.
    pub last_restore: Option<RestoreReport>,
}

/// What `begin_request` did before admitting the request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Admission {
    /// Process was already clean.
    Clean,
    /// A deferred rollback ran first (on the critical path).
    RestoredFirst,
    /// Rollback was skipped: same principal as the previous request.
    SkippedSamePrincipal,
}

/// The per-container Groundhog manager.
pub struct Manager {
    cfg: GroundhogConfig,
    pid: Pid,
    state: ManagerState,
    snapshot: Option<Snapshot>,
    tracker: Box<dyn MemoryTracker + Send>,
    last_principal: Option<String>,
    /// Pool-shared snapshot store + dedup key, when this manager belongs
    /// to a container pool. Used only when `cfg.cow_snapshot` is off — a
    /// CoW snapshot holds references into the process's own frames, so
    /// there are no page copies to intern.
    shared_store: Option<(String, StoreHandle)>,
    /// Virtual time the container went idle after its last lazy restore;
    /// the background drain's budget is the gap between this and the
    /// next request's admission.
    idle_since: Option<Nanos>,
    /// Lifetime counters.
    pub stats: ManagerStats,
}

impl Manager {
    /// Creates a manager for the function process `pid`.
    pub fn new(pid: Pid, cfg: GroundhogConfig) -> Manager {
        Self::with_shared_store(pid, cfg, None)
    }

    /// Creates a manager whose snapshot pages are interned into a
    /// pool-shared [`SnapshotStore`](gh_mem::SnapshotStore) under the
    /// dedup key (`None` keeps the snapshot private, as [`Manager::new`]).
    pub fn with_shared_store(
        pid: Pid,
        cfg: GroundhogConfig,
        shared_store: Option<(String, StoreHandle)>,
    ) -> Manager {
        let tracker = make_tracker(cfg.tracker);
        Manager {
            cfg,
            pid,
            state: ManagerState::Initializing,
            snapshot: None,
            tracker,
            last_principal: None,
            shared_store,
            idle_since: None,
            stats: ManagerStats::default(),
        }
    }

    /// The managed pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Current state.
    pub fn state(&self) -> ManagerState {
        self.state
    }

    /// Configuration in effect.
    pub fn config(&self) -> &GroundhogConfig {
        &self.cfg
    }

    /// The snapshot, once taken.
    pub fn snapshot(&self) -> Option<&Snapshot> {
        self.snapshot.as_ref()
    }

    /// True when a request may be forwarded to the function process
    /// without violating isolation. (`NeedsRestore` is also admissible —
    /// the manager will roll back or skip during admission.)
    pub fn is_ready(&self) -> bool {
        matches!(self.state, ManagerState::Ready | ManagerState::NeedsRestore)
    }

    /// The principal of the most recently admitted request, if any.
    pub fn last_principal(&self) -> Option<&str> {
        self.last_principal.as_deref()
    }

    /// True when admitting `principal` right now would *not* put a
    /// restore on the request's critical path: the process is provably
    /// clean, or the deferred rollback can be skipped because the
    /// previous request came from the same principal (§4.4's
    /// mutually-trusting-callers optimization). A restore-aware router
    /// uses this to keep rollbacks off every request's critical path.
    pub fn admits_without_restore(&self, principal: &str) -> bool {
        match self.state {
            ManagerState::Ready => true,
            ManagerState::NeedsRestore => {
                self.cfg.skip_same_principal && self.last_principal.as_deref() == Some(principal)
            }
            _ => false,
        }
    }

    /// Takes the clean-state snapshot (§4.2). The caller must have driven
    /// initialization and the dummy warm-up request (§4.1) first.
    pub fn snapshot_now(&mut self, kernel: &mut Kernel) -> Result<SnapshotReport, GhError> {
        self.snapshot_now_with(kernel, None)
    }

    /// Like [`Manager::snapshot_now`], with an optionally pre-locked pool
    /// store (`locked` must guard this manager's shared store): pool
    /// cold starts lock once per build instead of once per container.
    pub fn snapshot_now_with(
        &mut self,
        kernel: &mut Kernel,
        locked: Option<&mut gh_mem::SnapshotStore>,
    ) -> Result<SnapshotReport, GhError> {
        if self.state != ManagerState::Initializing {
            return Err(GhError::BadState {
                state: self.state.name(),
                op: "snapshot_now",
            });
        }
        let mode = if self.cfg.cow_snapshot {
            // CoW takes precedence: it keeps no page copies to intern,
            // and honoring it preserves pool-of-one timeline parity with
            // a lone CoW-configured container.
            SnapshotMode::Cow
        } else if let Some((key, store)) = &self.shared_store {
            SnapshotMode::Shared {
                store: store.clone(),
                key: key.clone(),
            }
        } else {
            SnapshotMode::Eager
        };
        let (snapshot, report) =
            Snapshotter::take_mode_with(kernel, self.pid, self.tracker.as_mut(), mode, locked)?;
        self.snapshot = Some(snapshot);
        self.stats.snapshot = Some(report);
        self.state = ManagerState::Ready;
        Ok(report)
    }

    /// Admits a request from `principal`, enforcing isolation. With
    /// deferred restores pending, either rolls back now (different
    /// principal → critical-path restore) or skips (same principal).
    pub fn begin_request(
        &mut self,
        kernel: &mut Kernel,
        principal: &str,
    ) -> Result<Admission, GhError> {
        if self.state == ManagerState::Ready {
            // Lazy + drain: the idle gap that just ended is the budget
            // the background drain ran in.
            self.background_drain(kernel);
        }
        let admission = match self.state {
            ManagerState::Ready => Admission::Clean,
            ManagerState::NeedsRestore => {
                if self.cfg.skip_same_principal && self.last_principal.as_deref() == Some(principal)
                {
                    self.stats.skipped_restores += 1;
                    Admission::SkippedSamePrincipal
                } else {
                    self.restore_now(kernel)?;
                    Admission::RestoredFirst
                }
            }
            s => {
                return Err(GhError::BadState {
                    state: s.name(),
                    op: "begin_request",
                })
            }
        };
        self.state = ManagerState::Executing;
        self.last_principal = Some(principal.to_string());
        self.stats.requests += 1;
        Ok(admission)
    }

    /// Marks the request finished (response already forwarded) and
    /// performs the off-critical-path rollback. Returns the restore
    /// report, or `None` when restoration is disabled (GHNOP) or deferred
    /// (same-principal skip mode).
    pub fn end_request(&mut self, kernel: &mut Kernel) -> Result<Option<RestoreReport>, GhError> {
        if self.state != ManagerState::Executing {
            return Err(GhError::BadState {
                state: self.state.name(),
                op: "end_request",
            });
        }
        if !self.cfg.restore_enabled {
            // GHNOP: no rollback ever; container stays "ready" (insecure
            // against cross-principal flows by design).
            self.state = ManagerState::Ready;
            return Ok(None);
        }
        if self.cfg.skip_same_principal {
            // Defer: the next request's principal decides.
            self.state = ManagerState::NeedsRestore;
            return Ok(None);
        }
        let report = self.restore_now(kernel)?;
        Ok(Some(report))
    }

    fn restore_now(&mut self, kernel: &mut Kernel) -> Result<RestoreReport, GhError> {
        let snapshot = self.snapshot.as_ref().ok_or(GhError::NoSnapshot)?;
        let pending_before = self.lazy_pending(kernel);
        let report =
            Restorer::restore(kernel, self.pid, snapshot, self.tracker.as_mut(), &self.cfg)?;
        self.stats.restores += 1;
        self.stats.total_restore_time += report.total;
        if self.cfg.restore_mode.is_lazy() {
            // Fresh obligations only: the DeferArm pass may re-arm a
            // page whose (dropped-and-re-entered or never-installed)
            // obligation is still pending — replacement, not new work.
            self.stats.deferred_pages += self.lazy_pending(kernel).saturating_sub(pending_before);
            self.harvest_lazy_drops(kernel);
            self.idle_since = Some(kernel.clock.now());
        }
        self.stats.last_restore = Some(report.clone());
        self.state = ManagerState::Ready;
        Ok(report)
    }

    /// Collects obligations the function discarded by dropping their
    /// mapping since the last harvest.
    fn harvest_lazy_drops(&mut self, kernel: &mut Kernel) {
        if let Ok(p) = kernel.process_mut(self.pid) {
            self.stats.lazy_dropped_pages += p.mem.take_lazy_dropped();
        }
    }

    /// Pages still awaiting on-demand restoration (lazy mode).
    pub fn lazy_pending(&self, kernel: &Kernel) -> u64 {
        kernel
            .process(self.pid)
            .map(|p| p.mem.lazy_pending_len() as u64)
            .unwrap_or(0)
    }

    /// Writes back *every* still-pending page right now, charging the
    /// full writeback cost to the clock — the "flush" end of the lazy
    /// spectrum, used by tests (to reach a bit-exact-with-eager state)
    /// and by operators before e.g. container checkpointing. Callable
    /// whenever no request is executing.
    pub fn drain_now(&mut self, kernel: &mut Kernel) -> Result<u64, GhError> {
        if self.state == ManagerState::Executing {
            return Err(GhError::BadState {
                state: self.state.name(),
                op: "drain_now",
            });
        }
        let runs: Vec<gh_mem::PageRange> = kernel
            .process(self.pid)
            .map(|p| p.mem.lazy_pending_runs())
            .unwrap_or_default();
        if runs.is_empty() {
            return Ok(0);
        }
        // Priced exactly like the eager writeback it stands in for,
        // including the configured parallel copy lanes.
        let lanes: Vec<(u64, u64)> = crate::plan::split_lanes(&runs, self.cfg.restore_lanes)
            .iter()
            .map(|l| (l.pages(), l.runs.len() as u64))
            .collect();
        let cost = kernel.cost.restore_lanes_cost(&lanes, self.cfg.coalesce);
        kernel.charge(cost);
        let (proc, frames) = kernel.mem_ctx(self.pid).map_err(GhError::from)?;
        let drained = proc.mem.drain_lazy(u64::MAX, frames);
        self.stats.lazy_drained_pages += drained;
        self.stats.lazy_drain_time += cost;
        self.harvest_lazy_drops(kernel);
        self.idle_since = Some(kernel.clock.now());
        Ok(drained)
    }

    /// The idle-time background drain: writes back as many pending pages
    /// as fit (at writeback rates) into the idle gap that just elapsed.
    /// The work consumed time the container was otherwise idle, so it is
    /// **not** charged to the clock — a request arriving now was never
    /// delayed by it; the drain merely converts dead time into fewer
    /// future first-touch faults.
    fn background_drain(&mut self, kernel: &mut Kernel) {
        if self.cfg.restore_mode != (RestoreMode::Lazy { drain: true }) {
            return;
        }
        let Some(since) = self.idle_since.take() else {
            return;
        };
        let budget = kernel.clock.now().saturating_sub(since);
        if budget.is_zero() {
            return;
        }
        let pending_runs: Vec<gh_mem::PageRange> = match kernel.process(self.pid) {
            Ok(p) => p.mem.lazy_pending_runs(),
            Err(_) => return,
        };
        if pending_runs.is_empty() {
            return;
        }
        // Greedy prefix in address order: the longest prefix of whole
        // pages whose cumulative cost — per the *same*
        // `restore_pages_cost` formula the eager writeback is priced
        // with — fits the elapsed idle gap. The formula is closed-form,
        // so re-evaluating it per page is cheap and keeps the drain
        // honest against any future change to the writeback model.
        let writeback = |pages: u64, runs: u64| {
            if self.cfg.coalesce {
                kernel.cost.restore_pages_cost(pages, runs)
            } else {
                kernel.cost.restore_pages_cost_uncoalesced(pages)
            }
        };
        let mut spent = Nanos::ZERO;
        let mut take = 0u64;
        let mut runs_taken = 0u64;
        'runs: for run in pending_runs {
            runs_taken += 1;
            for _ in run.iter() {
                let total = writeback(take + 1, runs_taken);
                if total > budget {
                    break 'runs;
                }
                spent = total;
                take += 1;
            }
        }
        if take == 0 {
            return;
        }
        let Ok((proc, frames)) = kernel.mem_ctx(self.pid) else {
            return;
        };
        let drained = proc.mem.drain_lazy(take, frames);
        self.stats.lazy_drained_pages += drained;
        self.stats.lazy_drain_time += spent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_mem::{PageRange, Perms, RequestId, Taint, Touch, VmaKind, Vpn};
    use gh_proc::Kernel;

    struct Rig {
        kernel: Kernel,
        mgr: Manager,
        region: PageRange,
    }

    fn rig_cfg(cfg: GroundhogConfig) -> Rig {
        let mut kernel = Kernel::boot();
        let pid = kernel.spawn("f");
        let region = kernel
            .run_charged(pid, |p, frames| {
                let r = p.mem.mmap(16, Perms::RW, VmaKind::Anon).unwrap();
                for vpn in r.iter() {
                    p.mem
                        .touch(vpn, Touch::WriteWord(7), Taint::Clean, frames)
                        .unwrap();
                }
                r
            })
            .unwrap()
            .0;
        let mut mgr = Manager::new(pid, cfg);
        mgr.snapshot_now(&mut kernel).unwrap();
        Rig {
            kernel,
            mgr,
            region,
        }
    }

    fn rig() -> Rig {
        rig_cfg(GroundhogConfig::gh())
    }

    fn run_request(r: &mut Rig, principal: &str, req: u64) -> Admission {
        let adm = r.mgr.begin_request(&mut r.kernel, principal).unwrap();
        let region = r.region;
        r.kernel
            .run_charged(r.mgr.pid(), |p, frames| {
                p.mem
                    .touch(
                        Vpn(region.start.0 + (req % 16)),
                        Touch::WriteWord(0x1000 + req),
                        Taint::One(RequestId(req)),
                        frames,
                    )
                    .unwrap();
            })
            .unwrap();
        r.mgr.end_request(&mut r.kernel).unwrap();
        adm
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut r = rig();
        assert_eq!(r.mgr.state(), ManagerState::Ready);
        assert!(r.mgr.is_ready());
        let adm = run_request(&mut r, "alice", 1);
        assert_eq!(adm, Admission::Clean);
        assert_eq!(
            r.mgr.state(),
            ManagerState::Ready,
            "eager restore after request"
        );
        assert_eq!(r.mgr.stats.requests, 1);
        assert_eq!(r.mgr.stats.restores, 1);
        // No taint from request 1 survives.
        let proc = r.kernel.process(r.mgr.pid()).unwrap();
        assert!(proc
            .mem
            .tainted_pages(RequestId(1), r.kernel.frames())
            .is_empty());
    }

    #[test]
    fn snapshot_requires_initializing_state() {
        let mut r = rig();
        let err = r.mgr.snapshot_now(&mut r.kernel).unwrap_err();
        assert!(matches!(err, GhError::BadState { .. }));
    }

    #[test]
    fn begin_twice_is_rejected() {
        let mut r = rig();
        r.mgr.begin_request(&mut r.kernel, "alice").unwrap();
        let err = r.mgr.begin_request(&mut r.kernel, "bob").unwrap_err();
        assert!(matches!(err, GhError::BadState { .. }));
    }

    #[test]
    fn end_without_begin_is_rejected() {
        let mut r = rig();
        let err = r.mgr.end_request(&mut r.kernel).unwrap_err();
        assert!(matches!(err, GhError::BadState { .. }));
    }

    #[test]
    fn ghnop_never_restores() {
        let mut r = rig_cfg(GroundhogConfig::ghnop());
        for i in 0..3 {
            run_request(&mut r, "alice", i);
        }
        assert_eq!(r.mgr.stats.restores, 0);
        // Taint persists — GHNOP is not an isolation mode.
        let proc = r.kernel.process(r.mgr.pid()).unwrap();
        assert!(!proc
            .mem
            .tainted_pages(RequestId(0), r.kernel.frames())
            .is_empty());
    }

    #[test]
    fn skip_same_principal_defers_and_skips() {
        let cfg = GroundhogConfig {
            skip_same_principal: true,
            ..GroundhogConfig::gh()
        };
        let mut r = rig_cfg(cfg);
        let a1 = run_request(&mut r, "alice", 1);
        assert_eq!(a1, Admission::Clean);
        assert_eq!(
            r.mgr.state(),
            ManagerState::NeedsRestore,
            "restore deferred"
        );
        let a2 = run_request(&mut r, "alice", 2);
        assert_eq!(a2, Admission::SkippedSamePrincipal);
        assert_eq!(r.mgr.stats.skipped_restores, 1);
        assert_eq!(r.mgr.stats.restores, 0);
        // A different principal forces the rollback before admission.
        let a3 = run_request(&mut r, "bob", 3);
        assert_eq!(a3, Admission::RestoredFirst);
        assert_eq!(r.mgr.stats.restores, 1);
        // After the forced restore, nothing of alice's remains.
        let proc = r.kernel.process(r.mgr.pid()).unwrap();
        assert!(proc
            .mem
            .tainted_pages(RequestId(1), r.kernel.frames())
            .is_empty());
        assert!(proc
            .mem
            .tainted_pages(RequestId(2), r.kernel.frames())
            .is_empty());
    }

    #[test]
    fn restore_time_accumulates_off_critical_path() {
        let mut r = rig();
        run_request(&mut r, "a", 1);
        run_request(&mut r, "b", 2);
        assert_eq!(r.mgr.stats.restores, 2);
        assert!(r.mgr.stats.total_restore_time > Nanos::ZERO);
        let last = r.mgr.stats.last_restore.as_ref().unwrap();
        assert!(last.total > Nanos::ZERO);
    }

    #[test]
    fn pool_managers_share_one_snapshot_image() {
        let store = gh_mem::SnapshotStore::new_handle();
        let mut total_present = 0u64;
        for _ in 0..3 {
            let mut kernel = Kernel::boot();
            let pid = kernel.spawn("f");
            kernel
                .run_charged(pid, |p, frames| {
                    let r = p.mem.mmap(16, Perms::RW, VmaKind::Anon).unwrap();
                    for vpn in r.iter() {
                        p.mem
                            .touch(vpn, Touch::WriteWord(7), Taint::Clean, frames)
                            .unwrap();
                    }
                })
                .unwrap();
            let mut mgr = Manager::with_shared_store(
                pid,
                GroundhogConfig::gh(),
                Some(("f".to_string(), store.clone())),
            );
            let report = mgr.snapshot_now(&mut kernel).unwrap();
            total_present += report.present_pages;
            // Restores still work off the shared snapshot.
            mgr.begin_request(&mut kernel, "alice").unwrap();
            kernel
                .run_charged(pid, |p, frames| {
                    let vpn = p.mem.maps()[0].range.start;
                    let _ = p.mem.touch(vpn, Touch::Read, Taint::Clean, frames);
                })
                .unwrap();
            mgr.end_request(&mut kernel).unwrap();
        }
        let st = store.lock().unwrap();
        assert_eq!(st.stats().logical_pages, total_present);
        assert!(
            (st.live_frames() as u64) < total_present,
            "3 identical containers must dedup: {} unique of {} logical",
            st.live_frames(),
            total_present
        );
    }

    #[test]
    fn stats_snapshot_populated() {
        let r = rig();
        let snap = r.mgr.stats.snapshot.unwrap();
        assert!(snap.present_pages >= 16);
        assert!(snap.duration > Nanos::ZERO);
        assert!(r.mgr.snapshot().is_some());
    }
}
