//! Admission queues and queue-depth instrumentation.
//!
//! Requests the router has assigned to a container wait here until the
//! container is provably clean (§4.5: "inputs are buffered until
//! restoration completes"). The [`DepthTracker`] samples aggregate depth
//! at every scheduling event so the fleet can report queue-depth
//! percentiles — the early-warning signal the autoscaler acts on.

use std::collections::VecDeque;

use gh_sim::stats::percentile_of_sorted;
use gh_sim::Nanos;

/// A request waiting in a container's admission queue.
#[derive(Clone, Debug)]
pub struct Pending {
    /// Globally unique request id (also the taint label).
    pub id: u64,
    /// The authenticated caller.
    pub principal: String,
    /// Input payload size, KiB.
    pub input_kb: u64,
    /// Virtual time the request arrived at the router.
    pub arrival: Nanos,
}

/// A FIFO admission queue in front of one container.
#[derive(Clone, Debug, Default)]
pub struct AdmissionQueue {
    items: VecDeque<Pending>,
}

impl AdmissionQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a request (router-assigned arrival order is preserved).
    pub fn push(&mut self, p: Pending) {
        self.items.push_back(p);
    }

    /// Removes the oldest waiting request.
    pub fn pop(&mut self) -> Option<Pending> {
        self.items.pop_front()
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Records aggregate queue-depth samples at scheduling events and
/// reports percentiles over them.
#[derive(Clone, Debug, Default)]
pub struct DepthTracker {
    samples: Vec<f64>,
}

impl DepthTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one depth observation.
    pub fn record(&mut self, depth: usize) {
        self.samples.push(depth as f64);
    }

    /// Number of observations taken.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no observations were taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Depth percentile over all observations; 0 with no observations.
    pub fn percentile(&self, p: f64) -> f64 {
        self.percentiles(&[p])[0]
    }

    /// Several depth percentiles in one pass (the samples are sorted
    /// once, not once per query); zeros with no observations.
    pub fn percentiles(&self, ps: &[f64]) -> Vec<f64> {
        if self.samples.is_empty() {
            return vec![0.0; ps.len()];
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN depth"));
        ps.iter()
            .map(|&p| percentile_of_sorted(&sorted, p))
            .collect()
    }

    /// Mean observed depth; 0 with no observations.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(id: u64, at: u64) -> Pending {
        Pending {
            id,
            principal: "p".into(),
            input_kb: 1,
            arrival: Nanos::from_millis(at),
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = AdmissionQueue::new();
        q.push(pending(1, 0));
        q.push(pending(2, 1));
        q.push(pending(3, 2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 3);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn depth_percentiles() {
        let mut d = DepthTracker::new();
        for depth in [0usize, 0, 1, 2, 4, 8] {
            d.record(depth);
        }
        assert_eq!(d.len(), 6);
        assert_eq!(d.percentile(100.0), 8.0);
        assert!(d.percentile(50.0) <= 2.0);
        assert!((d.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let d = DepthTracker::new();
        assert!(d.is_empty());
        assert_eq!(d.percentile(99.0), 0.0);
        assert_eq!(d.mean(), 0.0);
    }
}
