//! Platform-level behaviour: determinism, E2E composition, payload
//! sensitivity, and the workload harnesses.

use groundhog::core::GroundhogConfig;
use groundhog::faas::client::{closed_loop_latency, peak_throughput};
use groundhog::faas::platform::{Platform, PlatformConfig};
use groundhog::functions::catalog::by_name;
use groundhog::isolation::StrategyKind;

/// Identical seeds reproduce identical measurements exactly.
#[test]
fn runs_are_deterministic() {
    let spec = by_name("hexiom (p)").unwrap();
    let a = closed_loop_latency(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 6, 42).unwrap();
    let b = closed_loop_latency(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 6, 42).unwrap();
    assert_eq!(a, b, "full runs (e2e, invoker, restores) reproduce");
    let xa = peak_throughput(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 10, 7).unwrap();
    let xb = peak_throughput(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 10, 7).unwrap();
    assert_eq!(xa, xb);
}

/// Different seeds perturb measurements (noise model is live).
#[test]
fn seeds_vary_noise() {
    let spec = by_name("hexiom (p)").unwrap();
    let a = closed_loop_latency(&spec, StrategyKind::Base, GroundhogConfig::gh(), 6, 1).unwrap();
    let b = closed_loop_latency(&spec, StrategyKind::Base, GroundhogConfig::gh(), 6, 2).unwrap();
    assert_ne!(a.e2e, b.e2e);
}

/// E2E = controller path + invoker latency; the controller share matches
/// the paper's BASE calibration (E2E − invoker ≈ 30ms for FaaSProfiler).
#[test]
fn e2e_composition() {
    let cfg = PlatformConfig {
        platform_cov: 0.0,
        ..PlatformConfig::default()
    };
    let mut p = Platform::new(cfg);
    let spec = by_name("get-time (p)").unwrap();
    let id = p.deploy(&spec, StrategyKind::Base).unwrap();
    let out = p.invoke_simple(id, "a", 0).unwrap();
    let controller_ms = (out.e2e - out.invoker).as_millis_f64();
    assert!(
        (20.0..35.0).contains(&controller_ms),
        "controller path {controller_ms:.1}ms vs paper ≈26.7ms"
    );
}

/// GH's invoker overhead grows with payload size (§5.3.1: the 200 KiB
/// json inputs are proxied through the manager).
#[test]
fn payload_proxying_costs_scale() {
    let spec = by_name("json (p)").unwrap();
    let mut platform = Platform::new(PlatformConfig::default());
    let id = platform.deploy(&spec, StrategyKind::Gh).unwrap();
    let small = platform.invoke(id, "a", 1).unwrap();
    let large = platform.invoke(id, "a", 200).unwrap();
    let delta = (large.invoker - small.invoker).as_millis_f64();
    assert!(
        delta > 1.5,
        "200KiB payload must cost visibly more than 1KiB through the manager: {delta:.2}ms"
    );
}

/// One platform can host containers under different strategies side by
/// side, with independent state.
#[test]
fn mixed_strategy_deployments() {
    let mut platform = Platform::new(PlatformConfig::default());
    let spec = by_name("telco (p)").unwrap();
    let base = platform.deploy(&spec, StrategyKind::Base).unwrap();
    let gh = platform.deploy(&spec, StrategyKind::Gh).unwrap();
    for i in 0..3 {
        let principal = if i % 2 == 0 { "a" } else { "b" };
        platform.invoke_simple(base, principal, 0).unwrap();
        platform.invoke_simple(gh, principal, 0).unwrap();
    }
    assert_eq!(platform.container(base).stats.requests, 3);
    assert_eq!(platform.container(gh).stats.requests, 3);
    assert!(platform
        .container(base)
        .stats
        .last_post
        .as_ref()
        .unwrap()
        .restore
        .is_none());
    assert!(platform
        .container(gh)
        .stats
        .last_post
        .as_ref()
        .unwrap()
        .restore
        .is_some());
}

/// The saturating client reproduces Table 3's baseline throughput within
/// a band, across runtimes.
#[test]
fn baseline_throughput_calibration() {
    for (name, lo, hi) in [
        ("fannkuch (p)", 380.0, 800.0),  // paper 572
        ("trisolv (c)", 100.0, 190.0),   // paper 138
        ("get-time (n)", 600.0, 1300.0), // paper 942
    ] {
        let spec = by_name(name).unwrap();
        let x = peak_throughput(&spec, StrategyKind::Base, GroundhogConfig::gh(), 30, 9).unwrap();
        assert!(
            (lo..hi).contains(&x),
            "{name}: {x:.0} r/s outside [{lo}, {hi})"
        );
    }
}

/// Throughput harness honours the warm-up exclusion.
#[test]
fn warmup_exclusion_changes_nothing_fundamental() {
    let spec = by_name("mvt (c)").unwrap();
    let x = peak_throughput(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 24, 5).unwrap();
    assert!(x > 0.0);
}
