//! Actionloop-proxy interposition costs (§4.5, §5.1, §5.3.1).
//!
//! OpenWhisk's actionloop runtimes already pipe requests through a proxy
//! process; Groundhog inserts its manager between the proxy and the
//! runtime, "intercepting the stdin and stdout and forward\[ing\] the stdin
//! only when the function's process is restored to a clean state". That
//! interception costs:
//!
//! - a **handshake** per request (pipe hop + wake-up, and blocking until
//!   the restore-complete signal) — paid by configurations that actually
//!   gate on a rollback (GH, FORK);
//! - a **payload copy** per KiB in+out — paid by every interposing
//!   configuration (GH, GHNOP, FORK);
//! - the **refactored Node.js wrapper** multiplier (§5.3.1): Node's
//!   runtime was restructured into the actionloop shape to host the
//!   manager, making its proxying disproportionately expensive.

use gh_isolation::StrategyKind;
use gh_runtime::RuntimeKind;
use gh_sim::{CostModel, Nanos};

/// Per-request interposition cost for a strategy.
pub fn interposition_cost(
    cost: &CostModel,
    kind: StrategyKind,
    runtime: RuntimeKind,
    payload_kb: u64,
) -> Nanos {
    let refactored = runtime == RuntimeKind::NodeJs;
    let mult = if refactored {
        cost.nodejs_refactor_mult
    } else {
        1.0
    };
    match kind {
        // No manager in the path.
        StrategyKind::Base | StrategyKind::Faasm | StrategyKind::Fresh => Nanos::ZERO,
        // Manager splices the pipes through without gating on a rollback:
        // near-zero (Table 1 shows GHNOP invoker within ~0.2ms of BASE
        // even for 200KB payloads).
        StrategyKind::GhNop => Nanos::from_micros(30).scale(mult),
        // Full interception: handshake + payload copies while the input is
        // held until the restore-complete signal.
        StrategyKind::Gh | StrategyKind::Fork => cost.gh_proxy_cost(payload_kb, refactored),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_free() {
        let m = CostModel::default();
        assert_eq!(
            interposition_cost(&m, StrategyKind::Base, RuntimeKind::Python, 200),
            Nanos::ZERO
        );
        assert_eq!(
            interposition_cost(&m, StrategyKind::Faasm, RuntimeKind::NativeC, 10),
            Nanos::ZERO
        );
    }

    #[test]
    fn gh_pays_handshake_plus_payload() {
        let m = CostModel::default();
        let small = interposition_cost(&m, StrategyKind::Gh, RuntimeKind::Python, 1);
        let large = interposition_cost(&m, StrategyKind::Gh, RuntimeKind::Python, 200);
        assert!(small >= m.gh_proxy_base);
        assert!(large > small, "payload size matters (§5.3.1 json overhead)");
    }

    #[test]
    fn ghnop_pays_only_payload() {
        let m = CostModel::default();
        let nop = interposition_cost(&m, StrategyKind::GhNop, RuntimeKind::Python, 1);
        let gh = interposition_cost(&m, StrategyKind::Gh, RuntimeKind::Python, 1);
        assert!(nop < gh, "GHNOP has negligible overhead on small payloads");
        assert!(nop < Nanos::from_micros(50));
    }

    #[test]
    fn node_refactor_is_dearer() {
        let m = CostModel::default();
        let py = interposition_cost(&m, StrategyKind::Gh, RuntimeKind::Python, 200);
        let node = interposition_cost(&m, StrategyKind::Gh, RuntimeKind::NodeJs, 200);
        assert!(node.as_nanos() as f64 >= py.as_nanos() as f64 * 1.5);
    }

    #[test]
    fn fork_interposes_like_gh() {
        let m = CostModel::default();
        assert_eq!(
            interposition_cost(&m, StrategyKind::Fork, RuntimeKind::NativeC, 4),
            interposition_cost(&m, StrategyKind::Gh, RuntimeKind::NativeC, 4),
        );
    }
}
