//! Fig. 3 — microbenchmark latency.
//!
//! Left: latency vs. percentage of dirtied pages (100K mapped pages).
//! Right: latency vs. address-space size (1K dirtied pages fixed).
//! Solid lines = in-function overhead only (low load); dashed lines =
//! including restoration (high load, back-to-back requests).
//!
//! ```text
//! cargo run --release -p gh-bench --bin fig3
//! ```
//! Env: `GH_MICRO_PAGES` (default 100000), `GH_MICRO_REQS` (default 4).

use gh_bench::micro_harness::{micro_latency, MicroMode};
use gh_bench::{fmt_ms, write_csv};
use gh_sim::report::{AsciiPlot, TextTable};

const MODES: [MicroMode; 4] = [
    MicroMode::Base,
    MicroMode::GhNop,
    MicroMode::Gh,
    MicroMode::Fork,
];

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let pages = env_u64("GH_MICRO_PAGES", 100_000);
    let reqs = env_u64("GH_MICRO_REQS", 4) as usize;

    println!("== Fig. 3 (left): latency vs dirtied pages ({pages} mapped pages) ==\n");
    let fractions: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let mut table = TextTable::new(&[
        "dirtied %",
        "base",
        "GH-NOP",
        "GH",
        "fork",
        "base+rest",
        "GH-NOP+rest",
        "GH+rest",
        "fork+rest",
    ]);
    let mut solid: Vec<(MicroMode, Vec<(f64, f64)>)> =
        MODES.iter().map(|m| (*m, Vec::new())).collect();
    let mut dashed = solid.clone();
    for &frac in &fractions {
        let mut row = vec![format!("{:.0}", frac * 100.0)];
        let mut cycle_cells = Vec::new();
        for (i, mode) in MODES.iter().enumerate() {
            let lat = micro_latency(pages, frac, *mode, reqs);
            row.push(fmt_ms(lat.exec_ms));
            cycle_cells.push(fmt_ms(lat.cycle_ms));
            solid[i].1.push((frac * 100.0, lat.exec_ms));
            dashed[i].1.push((frac * 100.0, lat.cycle_ms));
        }
        row.extend(cycle_cells);
        table.row_owned(row);
    }
    println!("{}", table.render());
    write_csv("fig3_left", &table);

    let plot = AsciiPlot::new(72, 18);
    let series: Vec<(&str, Vec<(f64, f64)>)> = dashed
        .iter()
        .map(|(m, pts)| (m.label(), pts.clone()))
        .collect();
    println!(
        "latency+restoration (ms) vs dirtied pages (%):\n{}",
        plot.render(&series)
    );

    println!("== Fig. 3 (right): latency vs address space size (1K pages dirtied) ==\n");
    let sizes: Vec<u64> = vec![1_000, 5_000, 10_000, 25_000, 50_000, 75_000, 100_000];
    let mut table = TextTable::new(&[
        "Kpages",
        "base",
        "GH-NOP",
        "GH",
        "fork",
        "base+rest",
        "GH-NOP+rest",
        "GH+rest",
        "fork+rest",
    ]);
    let mut dashed_r: Vec<(MicroMode, Vec<(f64, f64)>)> =
        MODES.iter().map(|m| (*m, Vec::new())).collect();
    for &size in &sizes {
        let frac = (1_000.0 / size as f64).min(1.0);
        let mut row = vec![format!("{}", size / 1000)];
        let mut cycle_cells = Vec::new();
        for (i, mode) in MODES.iter().enumerate() {
            let lat = micro_latency(size, frac, *mode, reqs);
            row.push(fmt_ms(lat.exec_ms));
            cycle_cells.push(fmt_ms(lat.cycle_ms));
            dashed_r[i].1.push((size as f64 / 1000.0, lat.cycle_ms));
        }
        row.extend(cycle_cells);
        table.row_owned(row);
    }
    println!("{}", table.render());
    write_csv("fig3_right", &table);

    let plot = AsciiPlot::new(72, 18);
    let series: Vec<(&str, Vec<(f64, f64)>)> = dashed_r
        .iter()
        .map(|(m, pts)| (m.label(), pts.clone()))
        .collect();
    println!(
        "latency+restoration (ms) vs address space (Kpages):\n{}",
        plot.render(&series)
    );

    println!(
        "Expected shapes (paper §5.2): GH-NOP ≈ base; GH grows with dirtied pages \
         (in-function) and with address-space size (restoration scan); fork is dearest \
         (CoW copies + dTLB-cold accesses grow with address-space size)."
    );
}
