//! Content-addressed result cache with deterministic virtual-time
//! expiry and an LRU byte budget.
//!
//! Idempotent requests are keyed by `(function, canonicalized payload)`
//! — [`Payload`] sorts its key-value pairs before hashing, so two
//! payloads that differ only in field order produce the same
//! [`CacheKey`]. A hit short-circuits the request at the gateway; the
//! container pool never sees it.
//!
//! Every decision is a pure function of the insert/lookup sequence and
//! the *virtual* clock, never the host clock:
//!
//! - **TTL expiry** is exact-boundary: an entry inserted visible at `v`
//!   with TTL `T` serves hits for `now ∈ [v, v+T)` and is expired *at*
//!   `v+T` ([`ResultCache::lookup`] is strict, pinned by a unit test).
//!   [`ResultCache::next_expiry`] exposes the earliest deadline so the
//!   driving event loop can schedule expiry as an event on its
//!   [`gh_sim::event::EventQueue`] and sweep with
//!   [`ResultCache::expire_due`].
//! - **LRU eviction** orders entries by a logical recency counter
//!   (bumped on hit and insert), not wall time, so eviction order is
//!   identical across serial and parallel drivers.

use std::collections::{BTreeMap, HashMap};

use gh_sim::Nanos;

/// Fixed per-entry bookkeeping charge (key, indices, expiry slot) added
/// to the payload bytes when accounting against the byte budget.
pub const ENTRY_OVERHEAD_BYTES: u64 = 64;

/// splitmix64 finalizer — the workspace's standard way to derive
/// well-mixed synthetic hashes (payload ids, per-request salts) from
/// small integers.
#[inline]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A request payload as the gateway sees it: named `u64` fields.
///
/// Construction canonicalizes — pairs are sorted by `(key, value)` — so
/// the hash is independent of the order the caller listed the fields
/// in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Payload {
    pairs: Vec<(String, u64)>,
}

impl Payload {
    /// Builds a canonicalized payload from `(field, value)` pairs.
    pub fn new<K: Into<String>>(pairs: impl IntoIterator<Item = (K, u64)>) -> Payload {
        let mut pairs: Vec<(String, u64)> = pairs.into_iter().map(|(k, v)| (k.into(), v)).collect();
        pairs.sort();
        Payload { pairs }
    }

    /// The canonical pairs, sorted.
    pub fn pairs(&self) -> &[(String, u64)] {
        &self.pairs
    }

    /// FNV-1a over the canonical encoding (length-prefixed field names,
    /// little-endian values). Deterministic across platforms and runs.
    pub fn hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for (k, v) in &self.pairs {
            eat(&(k.len() as u64).to_le_bytes());
            eat(k.as_bytes());
            eat(&v.to_le_bytes());
        }
        h
    }
}

/// The content address of a cacheable result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Function identity (fleet runs use 0; cluster runs use the trace
    /// `fn_id`).
    pub fn_id: u64,
    /// Deployment generation of the function. A redeploy bumps the
    /// driving loop's generation counter, so results produced by the
    /// old code become unreachable even before
    /// [`ResultCache::redeploy`] sweeps them.
    pub generation: u64,
    /// Canonical payload hash ([`Payload::hash`] or a trace-synthesized
    /// equivalent).
    pub payload_hash: u64,
}

impl CacheKey {
    /// Key of `payload` under function `fn_id`, generation 0.
    pub fn new(fn_id: u64, payload: &Payload) -> CacheKey {
        CacheKey {
            fn_id,
            generation: 0,
            payload_hash: payload.hash(),
        }
    }
}

/// Result-cache knobs.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Per-function TTL: an entry serves hits for `[visible, visible+ttl)`.
    pub ttl: Nanos,
    /// LRU byte budget over `output bytes + ENTRY_OVERHEAD_BYTES` per
    /// entry. Inserting past the budget evicts least-recently-used
    /// entries first.
    pub byte_budget: u64,
    /// Virtual-time cost charged to a request served from the cache
    /// (hash + lookup + response serialization at the gateway).
    pub hit_cost: Nanos,
}

impl CacheConfig {
    /// A small general-purpose cache: 30s TTL, 4 MiB budget, 50µs hits.
    pub fn default_for_ttl(ttl: Nanos) -> CacheConfig {
        CacheConfig {
            ttl,
            byte_budget: 4 << 20,
            hit_cost: Nanos::from_micros(50),
        }
    }
}

/// Cache outcome counters (all monotone).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Idempotent lookups that found nothing servable.
    pub misses: u64,
    /// Entries inserted (including replacements).
    pub insertions: u64,
    /// Entries evicted by the LRU byte budget.
    pub evictions: u64,
    /// Entries removed by TTL expiry.
    pub expired: u64,
    /// Entries dropped because their function was redeployed.
    pub invalidated: u64,
}

struct Entry {
    recency: u64,
    seq: u64,
    visible_from: Nanos,
    expires_at: Nanos,
    bytes: u64,
    output_kb: u64,
}

/// The content-addressed result cache. See the module docs for the
/// determinism contract.
pub struct ResultCache {
    cfg: CacheConfig,
    entries: HashMap<CacheKey, Entry>,
    /// LRU index: logical recency → key.
    by_recency: BTreeMap<u64, CacheKey>,
    /// Expiry index: (deadline, insert seq) → key.
    by_expiry: BTreeMap<(Nanos, u64), CacheKey>,
    tick: u64,
    seq: u64,
    bytes: u64,
    /// Outcome counters.
    pub stats: CacheStats,
}

impl ResultCache {
    /// An empty cache under `cfg`.
    pub fn new(cfg: CacheConfig) -> ResultCache {
        ResultCache {
            cfg,
            entries: HashMap::new(),
            by_recency: BTreeMap::new(),
            by_expiry: BTreeMap::new(),
            tick: 0,
            seq: 0,
            bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache runs under.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently charged against the budget — bounded by
    /// `byte_budget` by construction, independent of request count.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    fn unlink(&mut self, key: &CacheKey) -> Option<Entry> {
        let e = self.entries.remove(key)?;
        self.by_recency.remove(&e.recency);
        self.by_expiry.remove(&(e.expires_at, e.seq));
        self.bytes -= e.bytes;
        Some(e)
    }

    /// Looks `key` up at virtual time `now`. Serves entries with
    /// `visible_from ≤ now < expires_at`; the upper bound is strict, so
    /// a lookup at exactly the expiry deadline misses. A hit bumps the
    /// entry's LRU recency and returns its output size (KiB).
    pub fn lookup(&mut self, key: CacheKey, now: Nanos) -> Option<u64> {
        let servable = self
            .entries
            .get(&key)
            .is_some_and(|e| e.visible_from <= now && now < e.expires_at);
        if !servable {
            self.stats.misses += 1;
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.get_mut(&key).expect("checked above");
        self.by_recency.remove(&e.recency);
        e.recency = tick;
        let out = e.output_kb;
        self.by_recency.insert(tick, key);
        self.stats.hits += 1;
        Some(out)
    }

    /// Inserts (or replaces) the result for `key`: `output_kb` KiB
    /// becoming visible at `visible_from` (the backend response time)
    /// and expiring at `visible_from + ttl`. Evicts least-recently-used
    /// entries until the byte budget holds; an entry larger than the
    /// whole budget is not cached at all.
    pub fn insert(&mut self, key: CacheKey, output_kb: u64, visible_from: Nanos) {
        let bytes = output_kb * 1024 + ENTRY_OVERHEAD_BYTES;
        if bytes > self.cfg.byte_budget {
            return;
        }
        self.unlink(&key);
        while self.bytes + bytes > self.cfg.byte_budget {
            let (_, victim) = self
                .by_recency
                .iter()
                .next()
                .map(|(r, k)| (*r, *k))
                .expect("over budget implies a resident entry");
            self.unlink(&victim);
            self.stats.evictions += 1;
        }
        self.tick += 1;
        self.seq += 1;
        let e = Entry {
            recency: self.tick,
            seq: self.seq,
            visible_from,
            expires_at: visible_from + self.cfg.ttl,
            bytes,
            output_kb,
        };
        self.by_recency.insert(e.recency, key);
        self.by_expiry.insert((e.expires_at, e.seq), key);
        self.bytes += bytes;
        self.entries.insert(key, e);
        self.stats.insertions += 1;
    }

    /// The earliest expiry deadline among live entries — what the
    /// driving event loop schedules its next cache-expiry event at.
    pub fn next_expiry(&self) -> Option<Nanos> {
        self.by_expiry.keys().next().map(|&(at, _)| at)
    }

    /// Drops every entry belonging to `fn_id`, across all generations —
    /// a redeploy makes cached results stale regardless of TTL. The
    /// caller bumps its generation counter as well, so in-flight fills
    /// from the old deployment land under unreachable keys. Returns how
    /// many entries were invalidated.
    pub fn redeploy(&mut self, fn_id: u64) -> usize {
        let victims: Vec<CacheKey> = self
            .entries
            .keys()
            .filter(|k| k.fn_id == fn_id)
            .copied()
            .collect();
        for key in &victims {
            self.unlink(key);
        }
        self.stats.invalidated += victims.len() as u64;
        victims.len()
    }

    /// Removes every entry whose deadline has passed (`expires_at ≤
    /// now`), returning how many were swept.
    pub fn expire_due(&mut self, now: Nanos) -> usize {
        let mut swept = 0;
        while let Some((&(at, _), &key)) = self.by_expiry.iter().next() {
            if at > now {
                break;
            }
            self.unlink(&key);
            self.stats.expired += 1;
            swept += 1;
        }
        swept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(ttl_ms: u64, budget: u64) -> ResultCache {
        ResultCache::new(CacheConfig {
            ttl: Nanos::from_millis(ttl_ms),
            byte_budget: budget,
            hit_cost: Nanos::from_micros(50),
        })
    }

    #[test]
    fn payload_hash_is_order_independent() {
        let a = Payload::new([("user", 7u64), ("size", 3), ("op", 1)]);
        let b = Payload::new([("op", 1u64), ("user", 7), ("size", 3)]);
        assert_eq!(a, b, "canonicalization sorts the pairs");
        assert_eq!(a.hash(), b.hash());
        assert_eq!(CacheKey::new(4, &a), CacheKey::new(4, &b));
    }

    #[test]
    fn payload_hash_separates_values_fields_and_functions() {
        let a = Payload::new([("k", 1u64)]);
        let b = Payload::new([("k", 2u64)]);
        let c = Payload::new([("q", 1u64)]);
        assert_ne!(a.hash(), b.hash(), "value matters");
        assert_ne!(a.hash(), c.hash(), "field name matters");
        assert_ne!(CacheKey::new(0, &a), CacheKey::new(1, &a), "fn matters");
        // Length prefixing keeps ("ab",…) ≠ ("a",…) + ("b",…) style
        // ambiguity out of the encoding.
        let d = Payload::new([("ab", 1u64)]);
        let e = Payload::new([("a", 1u64), ("b", 1)]);
        assert_ne!(d.hash(), e.hash());
    }

    #[test]
    fn ttl_boundary_is_exact() {
        let mut c = cache(10, 1 << 20);
        let key = CacheKey::new(0, &Payload::new([("k", 1u64)]));
        let visible = Nanos::from_millis(100);
        c.insert(key, 2, visible);
        assert!(c.lookup(key, visible).is_some(), "servable at visibility");
        let last = visible + Nanos::from_millis(10) - Nanos::from_nanos(1);
        assert!(c.lookup(key, last).is_some(), "servable one tick before");
        let deadline = visible + Nanos::from_millis(10);
        assert!(
            c.lookup(key, deadline).is_none(),
            "expired at the exact deadline"
        );
        assert_eq!(c.next_expiry(), Some(deadline));
        assert_eq!(c.expire_due(deadline), 1);
        assert!(c.is_empty());
        assert_eq!(c.stats.expired, 1);
    }

    #[test]
    fn entries_are_invisible_before_their_fill_completes() {
        let mut c = cache(50, 1 << 20);
        let key = CacheKey::new(0, &Payload::new([("k", 9u64)]));
        c.insert(key, 1, Nanos::from_millis(20));
        assert!(
            c.lookup(key, Nanos::from_millis(10)).is_none(),
            "the backend response has not landed yet"
        );
        assert!(c.lookup(key, Nanos::from_millis(20)).is_some());
    }

    #[test]
    fn lru_budget_evicts_least_recently_used() {
        // Budget fits exactly two 1-KiB entries (1024 + 64 overhead each).
        let mut c = cache(1_000, 2 * (1024 + ENTRY_OVERHEAD_BYTES));
        let k = |i: u64| CacheKey {
            fn_id: 0,
            generation: 0,
            payload_hash: i,
        };
        let t = Nanos::from_millis(1);
        c.insert(k(1), 1, t);
        c.insert(k(2), 1, t);
        // Touch k1 so k2 is the LRU victim.
        assert!(c.lookup(k(1), Nanos::from_millis(2)).is_some());
        c.insert(k(3), 1, t);
        assert_eq!(c.stats.evictions, 1);
        assert!(c.lookup(k(1), Nanos::from_millis(3)).is_some(), "kept");
        assert!(c.lookup(k(2), Nanos::from_millis(3)).is_none(), "evicted");
        assert!(c.lookup(k(3), Nanos::from_millis(3)).is_some(), "inserted");
        assert!(c.bytes() <= 2 * (1024 + ENTRY_OVERHEAD_BYTES));
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let mut c = cache(1_000, 100);
        let key = CacheKey::new(0, &Payload::new([("k", 1u64)]));
        c.insert(key, 1, Nanos::ZERO); // 1088 B > 100 B budget
        assert!(c.is_empty());
        assert_eq!(c.stats.insertions, 0);
    }

    #[test]
    fn reinsert_replaces_and_reaccounts() {
        let mut c = cache(10, 1 << 20);
        let key = CacheKey::new(0, &Payload::new([("k", 1u64)]));
        c.insert(key, 4, Nanos::from_millis(1));
        let before = c.bytes();
        c.insert(key, 2, Nanos::from_millis(5));
        assert_eq!(c.len(), 1);
        assert!(c.bytes() < before, "smaller result re-accounted");
        // The replacement's TTL runs from its own visibility.
        assert_eq!(c.next_expiry(), Some(Nanos::from_millis(15)));
        assert_eq!(c.lookup(key, Nanos::from_millis(12)), Some(2));
    }

    #[test]
    fn redeploy_drops_only_the_functions_entries() {
        let mut c = cache(1_000, 1 << 20);
        let key = |f: u64, p: u64| CacheKey {
            fn_id: f,
            generation: 0,
            payload_hash: p,
        };
        let t = Nanos::from_millis(1);
        c.insert(key(0, 1), 1, t);
        c.insert(key(0, 2), 1, t);
        c.insert(key(1, 3), 1, t);
        assert_eq!(c.redeploy(0), 2);
        assert_eq!(c.stats.invalidated, 2);
        assert!(c.lookup(key(0, 1), t).is_none(), "fn 0 invalidated");
        assert!(c.lookup(key(1, 3), t).is_some(), "fn 1 untouched");
        // The expiry index is consistent: only fn 1's deadline remains.
        assert_eq!(c.next_expiry(), Some(t + Nanos::from_millis(1_000)));
    }

    #[test]
    fn generation_bump_hides_entries_even_inside_their_ttl() {
        // The TTL/generation interaction: an entry is servable for its
        // whole TTL window *only under the generation it was filled
        // at*. After a redeploy the driving loop looks up (and fills)
        // generation g+1 keys, so an un-swept old-generation entry can
        // never produce a hit, no matter how fresh its TTL is.
        let mut c = cache(1_000, 1 << 20);
        let old = CacheKey {
            fn_id: 0,
            generation: 0,
            payload_hash: 42,
        };
        let new = CacheKey {
            generation: 1,
            ..old
        };
        let t = Nanos::from_millis(1);
        c.insert(old, 1, t);
        assert!(c.lookup(old, t).is_some(), "inside TTL, same generation");
        assert!(
            c.lookup(new, t).is_none(),
            "inside TTL, bumped generation misses"
        );
        // The new generation fills independently; both coexist until
        // redeploy() or TTL sweeps the stale one.
        c.insert(new, 1, t);
        assert_eq!(c.len(), 2);
        assert_eq!(c.redeploy(0), 2, "redeploy sweeps all generations");
    }

    #[test]
    fn mix_spreads_small_integers() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            seen.insert(mix(i));
        }
        assert_eq!(seen.len(), 1000, "no collisions on small inputs");
    }
}
