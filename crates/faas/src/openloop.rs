//! Open-loop (Poisson) arrivals against one container.
//!
//! §4's design goal: "Groundhog restores state *between* activations of a
//! function, and therefore does not contribute to a function's activation
//! latency under low to medium server load." The closed-loop harness
//! can't show that claim's limit — this open-loop client can: requests
//! arrive whether or not the container is ready, and queue behind both
//! execution *and* restoration. At low utilization restores hide in idle
//! gaps; as offered load approaches the (restore-reduced) capacity,
//! queueing explodes earlier under GH than under BASE.
//!
//! Since the fleet refactor this is a thin wrapper over
//! [`crate::fleet`]: a single container is a pool of one behind the
//! round-robin router, driven through the same event queue as any
//! larger fleet.

use gh_functions::FunctionSpec;
use gh_isolation::{StrategyError, StrategyKind};
use groundhog_core::GroundhogConfig;

use crate::fleet::{run_fleet, FleetConfig, FleetResult, RoutePolicy};

/// Outcome of one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopResult {
    /// Offered arrival rate (requests/second).
    pub offered_rps: f64,
    /// Completed requests.
    pub completed: usize,
    /// Achieved goodput (completions per second of busy span).
    pub goodput_rps: f64,
    /// Mean sojourn time (arrival → response), ms. Queueing included.
    pub mean_ms: f64,
    /// 99th-percentile sojourn time, ms.
    pub p99_ms: f64,
    /// Server utilization over the run (busy time / span).
    pub utilization: f64,
}

impl From<FleetResult> for OpenLoopResult {
    fn from(r: FleetResult) -> OpenLoopResult {
        OpenLoopResult {
            offered_rps: r.offered_rps,
            completed: r.completed,
            goodput_rps: r.goodput_rps,
            mean_ms: r.mean_ms,
            p99_ms: r.p99_ms,
            utilization: r.utilization,
        }
    }
}

/// Runs `requests` Poisson arrivals at `offered_rps` against a fresh
/// container of `spec` under `kind` — a fleet of one.
pub fn open_loop_run(
    spec: &FunctionSpec,
    kind: StrategyKind,
    gh: GroundhogConfig,
    offered_rps: f64,
    requests: usize,
    seed: u64,
) -> Result<OpenLoopResult, StrategyError> {
    let cfg = FleetConfig::fixed(RoutePolicy::RoundRobin, offered_rps, seed);
    Ok(run_fleet(spec, kind, gh, 1, cfg, requests)?.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_functions::catalog::by_name;

    fn run(kind: StrategyKind, rps: f64) -> OpenLoopResult {
        let spec = by_name("fannkuch (p)").unwrap();
        open_loop_run(&spec, kind, GroundhogConfig::gh(), rps, 120, 5).unwrap()
    }

    #[test]
    fn low_load_hides_restoration() {
        // fannkuch: exec ≈ 4.6ms, restore ≈ 2ms. At 20 r/s (≈10%
        // utilization) the restore must be invisible in sojourn times.
        let base = run(StrategyKind::Base, 20.0);
        let gh = run(StrategyKind::Gh, 20.0);
        assert!(gh.utilization < 0.35, "low load: {:.2}", gh.utilization);
        let rel = gh.mean_ms / base.mean_ms;
        assert!(
            rel < 1.45,
            "restore hidden at low load: gh {:.2}ms vs base {:.2}ms",
            gh.mean_ms,
            base.mean_ms
        );
    }

    #[test]
    fn high_load_exposes_restoration_as_queueing() {
        // Offered near BASE's capacity: GH's reduced capacity makes the
        // queue explode.
        let base = run(StrategyKind::Base, 130.0);
        let gh = run(StrategyKind::Gh, 130.0);
        assert!(
            gh.mean_ms > base.mean_ms * 1.8,
            "queueing should blow up first under GH: gh {:.1}ms base {:.1}ms",
            gh.mean_ms,
            base.mean_ms
        );
    }

    #[test]
    fn utilization_grows_with_offered_load() {
        let lo = run(StrategyKind::Gh, 10.0);
        let hi = run(StrategyKind::Gh, 100.0);
        assert!(hi.utilization > lo.utilization * 2.0);
        assert!(lo.p99_ms >= lo.mean_ms);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_load_rejected() {
        let spec = by_name("fannkuch (p)").unwrap();
        let _ = open_loop_run(&spec, StrategyKind::Base, GroundhogConfig::gh(), 0.0, 1, 1);
    }
}
