//! Criterion bench: restore cost versus write-set size and address-space
//! size (the mechanics behind Fig. 3 and Table 3).
//!
//! These measure *implementation* (host) time of the simulated restore
//! engine; the virtual-time results live in the `fig*` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gh_mem::{Perms, RequestId, Taint, Touch, VmaKind};
use gh_proc::Kernel;
use groundhog_core::{GroundhogConfig, Manager};

fn build_manager(pages: u64) -> (Kernel, Manager) {
    let mut kernel = Kernel::boot();
    let pid = kernel.spawn("bench");
    kernel
        .run_charged(pid, |p, frames| {
            let r = p.mem.mmap(pages, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(1), Taint::Clean, frames)
                    .unwrap();
            }
        })
        .unwrap();
    let mut mgr = Manager::new(pid, GroundhogConfig::gh());
    mgr.snapshot_now(&mut kernel).unwrap();
    (kernel, mgr)
}

fn dirty_and_restore(kernel: &mut Kernel, mgr: &mut Manager, dirty: u64, req: u64) {
    let pid = mgr.pid();
    mgr.begin_request(kernel, "bench").unwrap();
    let first = kernel.process(pid).unwrap().mem.pagemap().next().unwrap().0;
    kernel
        .run_charged(pid, |p, frames| {
            for i in 0..dirty {
                let vpn = gh_mem::Vpn(first.0 + i * 2);
                let _ = p.mem.touch(
                    vpn,
                    Touch::WriteWord(req ^ i),
                    Taint::One(RequestId(req)),
                    frames,
                );
            }
        })
        .unwrap();
    mgr.end_request(kernel).unwrap();
}

fn bench_restore_vs_dirty(c: &mut Criterion) {
    let mut group = c.benchmark_group("restore_vs_dirty_pages");
    group.sample_size(10);
    for dirty in [64u64, 512, 2048] {
        let (mut kernel, mut mgr) = build_manager(8192);
        let mut req = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(dirty), &dirty, |b, &d| {
            b.iter(|| {
                req += 1;
                dirty_and_restore(black_box(&mut kernel), &mut mgr, d, req);
            })
        });
    }
    group.finish();
}

fn bench_restore_vs_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("restore_vs_address_space");
    group.sample_size(10);
    for pages in [2_048u64, 16_384, 65_536] {
        let (mut kernel, mut mgr) = build_manager(pages);
        let mut req = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(pages), &pages, |b, _| {
            b.iter(|| {
                req += 1;
                dirty_and_restore(black_box(&mut kernel), &mut mgr, 256, req);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_restore_vs_dirty, bench_restore_vs_space);
criterion_main!(benches);
