//! Stateful workflows: responses enqueue downstream invocations.
//!
//! Groundhog isolates *requests*; real FaaS applications compose them
//! into chains and DAGs (the paper's motivating apps — ML inference
//! pipelines, image processing — are multi-stage). This module runs
//! workflow instances over real [`Container`]s and layers on the two
//! pieces of state the fault layer needs to prove crash-equivalence
//! against:
//!
//! - **Idempotent commits** keyed by `(workflow, hop_path)`: every hop
//!   commits exactly one versioned write to the shared KV shim. A
//!   retried hop whose earlier attempt crashed *after* its commit
//!   ([`crate::fault::FaultPlan::death_after_commit`]) re-derives the
//!   identical value and its re-commit is suppressed by
//!   [`VersionedKv::commit`] — never double-applied. For chains the
//!   hop path is just the hop index; DAGs encode `(node, branch)` in
//!   it ([`dag::hop_path`]).
//! - **Read-atomic snapshot reads** (AFT-style): each workflow pins the
//!   KV version at its first hop; every hop of that workflow reads
//!   through the pinned snapshot ([`VersionedKv::read_at`]). Retries
//!   therefore observe exactly the state the crashed attempt observed,
//!   which is what makes hop values pure functions of
//!   `(workflow, hop_path, input, pinned reads)` and the whole run
//!   crash-equivalent: a faulty run with zero abandoned workflows ends
//!   in the same final KV state and per-workflow outputs as the
//!   crash-free run (`tests/fault_oracle.rs`, `tests/dag_oracle.rs`).
//!
//! The submodules extend the chain runner kept here:
//!
//! - [`dag`]: dynamic DAGs — fan-out, deterministic fan-in merges, and
//!   conditional edges — committed hop-by-hop to the same KV;
//! - [`migrate`]: cross-node workflow migration — in-flight hops
//!   re-dispatched along [`crate::cluster::Placer`] replica order when
//!   their node is lost, carrying only the KV snapshot version.
//!
//! Taint tracking extends across hops: after each invoke the hop's
//! container is asked for pages still tainted by the request
//! (`gh_mem::Space::tainted_pages`). Under `Base` the function's dirty
//! pages survive into the next invocation — a tainted page flowing
//! into the downstream payload — and are counted in
//! [`WorkflowResult::tainted_handoffs`]; under `Gh` the rollback wipes
//! them and the count stays zero (the cross-hop version of the
//! container-level isolation tests).

pub mod dag;
pub mod migrate;

use std::collections::{BTreeMap, HashSet};

use gh_functions::FunctionSpec;
use gh_isolation::{StrategyError, StrategyKind};
use gh_mem::RequestId;
use groundhog_core::GroundhogConfig;

use crate::container::Container;
use crate::fault::{FaultConfig, FaultPlan, FaultStats};
use crate::request::Request;

/// splitmix64 finalizer (same bijective mix as the fault streams);
/// duplicated so hop values do not depend on the fault module's seed
/// discipline.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The key every workflow's final hop aggregates into — shared state,
/// so read-atomicity is actually load-bearing (later workflows read
/// earlier workflows' commits through their pinned snapshots).
pub const AGG_KEY: u64 = 0;

/// Per-workflow scratch key (odd, so it never collides with
/// [`AGG_KEY`]).
fn wf_key(workflow: u64) -> u64 {
    mix(0x3A93_0000 ^ workflow) | 1
}

/// Versioned read-atomic KV shim shared across workflow hops.
///
/// Writes append `(commit_version, value)` pairs per key; reads go
/// through an explicit snapshot version so a workflow's hops all see
/// the same state regardless of interleaved commits or retries.
/// Commits are idempotent per `(workflow, hop_path)` — the second
/// commit of a retried hop is dropped and counted, not applied.
#[derive(Clone, Debug, Default)]
pub struct VersionedKv {
    /// key → append-only `(commit_version, value)` history, version
    /// ascending.
    versions: BTreeMap<u64, Vec<(u64, u64)>>,
    /// Monotone commit counter; a snapshot is just its current value.
    commit_seq: u64,
    /// `(workflow, hop_path)` pairs whose commit already applied.
    applied: HashSet<(u64, u64)>,
    /// Re-commits dropped by idempotence (duplicate executions whose
    /// first attempt committed before crashing).
    pub duplicates_suppressed: u64,
}

impl VersionedKv {
    /// Empty store.
    pub fn new() -> VersionedKv {
        VersionedKv::default()
    }

    /// The current version — pin this at workflow start and pass it to
    /// every [`VersionedKv::read_at`] of that workflow.
    pub fn snapshot(&self) -> u64 {
        self.commit_seq
    }

    /// Latest value of `key` visible at snapshot `version`.
    pub fn read_at(&self, key: u64, version: u64) -> Option<u64> {
        self.versions
            .get(&key)?
            .iter()
            .rev()
            .find(|&&(v, _)| v <= version)
            .map(|&(_, value)| value)
    }

    /// Latest committed value of `key`.
    pub fn latest(&self, key: u64) -> Option<u64> {
        self.versions.get(&key)?.last().map(|&(_, value)| value)
    }

    /// Idempotent commit: applies `value` under `key` unless
    /// `(workflow, hop_path)` already committed, in which case the
    /// write is suppressed and counted. Returns whether the write
    /// applied. Chains pass the hop index as the path; DAG hops encode
    /// `(node, branch)` via [`dag::hop_path`].
    pub fn commit(&mut self, workflow: u64, hop: u64, key: u64, value: u64) -> bool {
        if !self.applied.insert((workflow, hop)) {
            self.duplicates_suppressed += 1;
            return false;
        }
        self.commit_seq += 1;
        self.versions
            .entry(key)
            .or_default()
            .push((self.commit_seq, value));
        true
    }

    /// Total versions ever applied. Equal across a crash-free run and
    /// a faulty run with no abandonment — any double-apply would show
    /// up as extra versions here.
    pub fn total_versions(&self) -> u64 {
        self.versions.values().map(|v| v.len() as u64).sum()
    }

    /// Order-stable fingerprint of the *final* state (latest value per
    /// key, folded in key order). The crash-equivalence oracle compares
    /// this across faulty and crash-free runs.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for (&key, history) in &self.versions {
            let &(_, value) = history.last().expect("non-empty history");
            h = mix(h ^ key).wrapping_add(mix(value));
        }
        h
    }
}

/// Workflow-run configuration. The chain itself (one [`FunctionSpec`]
/// per hop) is passed to [`run_workflows`] alongside this.
#[derive(Clone, Debug)]
pub struct WorkflowConfig {
    /// Number of workflow instances to run through the chain.
    pub workflows: u64,
    /// Isolation strategy for every hop container.
    pub kind: StrategyKind,
    /// Seed for container cold-starts and hop inputs.
    pub seed: u64,
    /// Optional fault schedule (container death per hop attempt).
    pub faults: Option<FaultConfig>,
}

impl WorkflowConfig {
    /// Fault-free config under `kind`.
    pub fn new(workflows: u64, kind: StrategyKind, seed: u64) -> WorkflowConfig {
        WorkflowConfig {
            workflows,
            kind,
            seed,
            faults: None,
        }
    }

    /// Arms fault injection; an inert config (all rates zero) is
    /// dropped so the run stays on the exact fault-free path.
    pub fn with_faults(mut self, cfg: FaultConfig) -> WorkflowConfig {
        self.faults = cfg.is_active().then_some(cfg);
        self
    }
}

/// What a workflow run produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkflowResult {
    /// Workflow instances started.
    pub workflows: u64,
    /// Instances that ran every hop to completion.
    pub completed: u64,
    /// Final-hop output per workflow (`None` for abandoned instances).
    pub outputs: Vec<Option<u64>>,
    /// Fingerprint of the final KV state ([`VersionedKv::fingerprint`]).
    pub kv_fingerprint: u64,
    /// Total KV versions applied ([`VersionedKv::total_versions`]).
    pub kv_versions: u64,
    /// Retried re-commits absorbed by idempotence — these are the
    /// would-be double-applies; `kv_versions` proves none landed.
    pub duplicates_suppressed: u64,
    /// Hops whose response carried request-tainted pages into the next
    /// hop's payload (zero under `Gh`, positive under `Base`).
    pub tainted_handoffs: u64,
    /// Fault accounting for the run.
    pub faults: FaultStats,
}

/// Runs `cfg.workflows` instances of the static chain `chain` (hop `h`
/// executes on a dedicated warm container of `chain[h]`), with
/// idempotent commits and pinned snapshot reads against a shared
/// [`VersionedKv`]. Returns per-workflow outputs plus the state
/// fingerprints the crash-equivalence oracle compares.
pub fn run_workflows(
    chain: &[FunctionSpec],
    gh: GroundhogConfig,
    cfg: &WorkflowConfig,
) -> Result<WorkflowResult, StrategyError> {
    assert!(!chain.is_empty(), "a chain needs at least one hop");
    let plan = cfg.faults.filter(|c| c.is_active()).map(FaultPlan::new);
    let mut containers: Vec<Container> = Vec::with_capacity(chain.len());
    for (h, spec) in chain.iter().enumerate() {
        containers.push(Container::cold_start(
            spec,
            cfg.kind,
            gh.clone(),
            mix(cfg.seed ^ 0x3077_F10E ^ h as u64),
        )?);
    }
    let hops = chain.len() as u64;
    let mut kv = VersionedKv::new();
    let mut outputs: Vec<Option<u64>> = Vec::with_capacity(cfg.workflows as usize);
    let mut completed = 0u64;
    let mut tainted_handoffs = 0u64;
    let mut faults = FaultStats::default();
    // Container-side request ids must be unique per invoke (taint
    // tracking is per request), so they come off a running counter.
    // Fault draws instead key on a *stable* per-(workflow, hop) id so
    // the schedule does not depend on how many attempts ran before.
    let mut invoke_seq = 1u64;
    for w in 0..cfg.workflows {
        let pinned = kv.snapshot();
        let mut input = mix(cfg.seed ^ 0x1297_07AD ^ w);
        let mut alive = true;
        let mut last = 0u64;
        for hop in 0..chain.len() {
            let fault_id = w * hops + hop as u64 + 1;
            let key = if hop + 1 == chain.len() {
                AGG_KEY
            } else {
                wf_key(w)
            };
            // The hop value is a pure function of (workflow, hop,
            // input, pinned reads): retries recompute it bit-for-bit.
            let agg_seen = kv.read_at(AGG_KEY, pinned).unwrap_or(0);
            let value = mix(input ^ mix((w << 8) ^ hop as u64) ^ agg_seen);
            let mut attempt = 1u32;
            loop {
                let rid = invoke_seq;
                invoke_seq += 1;
                let principal = format!("wf-{w}");
                let req = Request::new(rid, &principal, chain[hop].input_kb);
                containers[hop].invoke(&req)?;
                let tainted = {
                    let c = &containers[hop];
                    let proc = c.kernel.process(c.fproc.pid).expect("function process");
                    !proc
                        .mem
                        .tainted_pages(RequestId(rid), c.kernel.frames())
                        .is_empty()
                };
                if let Some(pl) = &plan {
                    if pl.death(fault_id, attempt).is_some() {
                        faults.deaths += 1;
                        if pl.death_after_commit(fault_id, attempt) {
                            // The commit raced ahead of the crash:
                            // state applied, response lost. The retry
                            // will re-derive `value` and be absorbed.
                            faults.duplicates += 1;
                            kv.commit(w, hop as u64, key, value);
                        }
                        if attempt < pl.max_attempts() {
                            faults.retries += 1;
                            attempt += 1;
                            continue;
                        }
                        faults.abandoned += 1;
                        alive = false;
                        break;
                    }
                }
                if tainted && hop + 1 < chain.len() {
                    tainted_handoffs += 1;
                }
                kv.commit(w, hop as u64, key, value);
                last = value;
                break;
            }
            if !alive {
                break;
            }
            input = value;
        }
        if alive {
            completed += 1;
            outputs.push(Some(last));
        } else {
            outputs.push(None);
        }
    }
    Ok(WorkflowResult {
        workflows: cfg.workflows,
        completed,
        outputs,
        kv_fingerprint: kv.fingerprint(),
        kv_versions: kv.total_versions(),
        duplicates_suppressed: kv.duplicates_suppressed,
        tainted_handoffs,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::RetryPolicy;
    use gh_functions::catalog::by_name;

    fn chain(names: &[&str]) -> Vec<FunctionSpec> {
        names.iter().map(|n| by_name(n).unwrap()).collect()
    }

    #[test]
    fn kv_reads_are_pinned_to_the_snapshot() {
        let mut kv = VersionedKv::new();
        kv.commit(0, 0, AGG_KEY, 10);
        let pinned = kv.snapshot();
        kv.commit(1, 0, AGG_KEY, 20);
        // The pinned reader still sees 10; an unpinned one sees 20.
        assert_eq!(kv.read_at(AGG_KEY, pinned), Some(10));
        assert_eq!(kv.latest(AGG_KEY), Some(20));
        assert_eq!(kv.read_at(AGG_KEY, kv.snapshot()), Some(20));
    }

    #[test]
    fn kv_commit_is_idempotent_per_workflow_hop() {
        let mut kv = VersionedKv::new();
        assert!(kv.commit(7, 2, AGG_KEY, 1));
        assert!(!kv.commit(7, 2, AGG_KEY, 1), "retried hop re-commit");
        assert_eq!(kv.total_versions(), 1, "never double-applied");
        assert_eq!(kv.duplicates_suppressed, 1);
        // A different hop of the same workflow is a fresh commit.
        assert!(kv.commit(7, 3, AGG_KEY, 2));
    }

    #[test]
    fn chains_complete_and_commit_once_per_hop() {
        let specs = chain(&["get-time (n)", "float (p)"]);
        let cfg = WorkflowConfig::new(12, StrategyKind::Gh, 0xC4A1);
        let r = run_workflows(&specs, GroundhogConfig::gh(), &cfg).unwrap();
        assert_eq!(r.completed, 12);
        assert!(r.outputs.iter().all(|o| o.is_some()));
        assert_eq!(r.kv_versions, 12 * 2, "one commit per (workflow, hop)");
        assert_eq!(r.duplicates_suppressed, 0);
        assert_eq!(r.tainted_handoffs, 0, "Gh wipes taint between hops");
        assert!(r.faults.is_empty());
    }

    #[test]
    fn crashes_with_retries_are_state_equivalent_to_crash_free() {
        let specs = chain(&["get-time (n)", "float (p)"]);
        let clean_cfg = WorkflowConfig::new(30, StrategyKind::Gh, 0xB0B);
        let clean = run_workflows(&specs, GroundhogConfig::gh(), &clean_cfg).unwrap();
        let mut fc = FaultConfig::deaths(0xD1E, 0.10);
        fc.retry = RetryPolicy {
            max_attempts: 6,
            ..RetryPolicy::bounded()
        };
        let faulty_cfg = clean_cfg.clone().with_faults(fc);
        let faulty = run_workflows(&specs, GroundhogConfig::gh(), &faulty_cfg).unwrap();
        assert!(faulty.faults.deaths > 0, "faults actually fired");
        assert_eq!(faulty.faults.abandoned, 0, "6 attempts never exhaust");
        assert_eq!(faulty.completed, 30);
        // Crash-equivalence: same outputs, same final KV state, and the
        // version count proves no retried commit double-applied.
        assert_eq!(faulty.outputs, clean.outputs);
        assert_eq!(faulty.kv_fingerprint, clean.kv_fingerprint);
        assert_eq!(faulty.kv_versions, clean.kv_versions);
        assert_eq!(
            faulty.duplicates_suppressed, faulty.faults.duplicates,
            "every post-commit death's retry was absorbed"
        );
    }

    #[test]
    fn base_leaks_tainted_pages_across_hops() {
        let specs = chain(&["telco (p)", "float (p)"]);
        let cfg = WorkflowConfig::new(6, StrategyKind::Base, 0x7A1);
        let r = run_workflows(&specs, GroundhogConfig::gh(), &cfg).unwrap();
        assert!(
            r.tainted_handoffs > 0,
            "Base leaves request pages dirty at the handoff"
        );
    }
}
