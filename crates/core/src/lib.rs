//! Groundhog's primary contribution: a language- and runtime-independent,
//! in-memory, lightweight process snapshot/restore mechanism for
//! sequential request isolation in FaaS (Alzayat et al., EuroSys 2023).
//!
//! The design goals of §4 map onto the modules here:
//!
//! - **Generality** — everything operates on a generic multi-threaded
//!   process through ptrace + `/proc` ([`snapshot`], [`restore`]); no
//!   assumption about the function inside.
//! - **Restore cost proportional to modified pages** — soft-dirty-bit
//!   tracking ([`track::SoftDirtyTracker`]), with a userfaultfd
//!   alternative ([`track::UffdTracker`]) kept for the §4.3 comparison.
//! - **Restore off the critical path** — the [`manager::Manager`] restores
//!   *between* activations and buffers incoming requests until the process
//!   is provably clean, never using copy-on-write during execution.
//!
//! The restore sequence follows §4.4 exactly and is timed phase-by-phase
//! ([`breakdown::RestorePhase`]) so the Fig. 8 decomposition can be
//! regenerated: interrupt, read maps, scan page metadata, diff layouts,
//! inject `brk`/`mmap`/`munmap`/`madvise`/`mprotect`, restore memory
//! (with contiguous-run coalescing), clear soft-dirty bits, restore
//! registers, detach.

pub mod breakdown;
pub mod config;
pub mod diff;
pub mod error;
pub mod manager;
pub mod restore;
pub mod snapshot;
pub mod track;

pub use breakdown::{Breakdown, RestorePhase};
pub use config::{GroundhogConfig, TrackerKind};
pub use diff::LayoutDiff;
pub use error::GhError;
pub use manager::{Manager, ManagerState, ManagerStats};
pub use restore::{RestoreReport, Restorer};
pub use snapshot::{Snapshot, SnapshotReport, Snapshotter};
pub use track::{DirtyReport, MemoryTracker, SoftDirtyTracker, UffdTracker};
