//! Gateway front-end primitives for the Groundhog fleet and cluster
//! simulations: content-addressed result caching, per-principal
//! admission control, and predictive pre-warming.
//!
//! Groundhog (EuroSys '23) makes per-request isolation cheap at the
//! container; what a production platform fronts those containers with
//! is a gateway. This crate holds the three gateway policies as pure,
//! deterministic state machines over the simulator's virtual clock:
//!
//! - [`cache::ResultCache`] — idempotent requests hashed over
//!   `(function, canonicalized payload)` short-circuit on a hit within
//!   a per-function TTL, under an LRU byte budget. Expiry is exact
//!   virtual-time ([`cache::ResultCache::next_expiry`] feeds the
//!   driving [`gh_sim::event::EventQueue`]).
//! - [`admission::AdmissionControl`] — per-principal token buckets
//!   refilled by elapsed virtual time plus a global concurrency
//!   ceiling; rejected and deferred requests are counted separately
//!   from served ones.
//! - [`prewarm::Prewarmer`] — an EWMA of per-function inter-arrival
//!   gaps, scaled by the trace's diurnal phase, projects the arrival
//!   rate one container-init ahead and issues pre-restore hints so
//!   warm slots beat the burst instead of trailing it like the
//!   reactive autoscaler.
//!
//! Nothing here touches a pool directly: the crate depends only on
//! `gh-sim` primitives, and `gh-faas` owns the event loops that wire
//! these policies in front of its fleet and cluster (see
//! `gh_faas::gateway` and `gh_faas::cluster`). That layering keeps the
//! differential oracle honest — a [`GatewayConfig::disabled`] gateway
//! run is byte-identical to the ungated fleet.
//!
//! # Example
//!
//! Build a gateway policy with the builder; leaving a knob unset
//! disables that policy:
//!
//! ```
//! use gh_gateway::admission::AdmissionConfig;
//! use gh_gateway::cache::CacheConfig;
//! use gh_gateway::GatewayConfig;
//! use gh_sim::Nanos;
//!
//! let gcfg = GatewayConfig::builder()
//!     .cache(CacheConfig::default_for_ttl(Nanos::from_secs(30)))
//!     .admission(AdmissionConfig::per_principal(50.0, 10))
//!     .build();
//! assert!(gcfg.cache.is_some());
//! assert!(gcfg.prewarm.is_none(), "pre-warming stays off unless set");
//! assert!(!GatewayConfig::disabled().any_enabled());
//! ```

pub mod admission;
pub mod cache;
pub mod prewarm;

use admission::AdmissionConfig;
use cache::CacheConfig;
use prewarm::PrewarmConfig;

/// The full gateway policy: each knob is independent and optional.
/// [`GatewayConfig::disabled`] (all `None`) is the differential-oracle
/// baseline — a gateway that admits everything, caches nothing, and
/// never pre-warms must behave byte-identically to no gateway at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct GatewayConfig {
    /// Content-addressed result cache; `None` disables caching.
    pub cache: Option<CacheConfig>,
    /// Token-bucket admission control; `None` admits everything.
    pub admission: Option<AdmissionConfig>,
    /// Predictive pre-warming; `None` leaves scaling to the pool.
    pub prewarm: Option<PrewarmConfig>,
}

impl GatewayConfig {
    /// The pass-through gateway: no cache, unlimited admission, no
    /// pre-warming.
    pub fn disabled() -> GatewayConfig {
        GatewayConfig::default()
    }

    /// Starts building a gateway policy. See the [crate example](crate).
    pub fn builder() -> GatewayBuilder {
        GatewayBuilder {
            cfg: GatewayConfig::default(),
        }
    }

    /// True when any policy is active — `false` means the gateway is a
    /// pure pass-through.
    pub fn any_enabled(&self) -> bool {
        self.cache.is_some() || self.admission.is_some() || self.prewarm.is_some()
    }
}

/// Builder for [`GatewayConfig`]; every policy left unset stays off.
#[derive(Clone, Copy, Debug)]
pub struct GatewayBuilder {
    cfg: GatewayConfig,
}

impl GatewayBuilder {
    /// Enables the result cache.
    pub fn cache(mut self, cache: CacheConfig) -> GatewayBuilder {
        self.cfg.cache = Some(cache);
        self
    }

    /// Enables admission control.
    pub fn admission(mut self, admission: AdmissionConfig) -> GatewayBuilder {
        self.cfg.admission = Some(admission);
        self
    }

    /// Enables predictive pre-warming.
    pub fn prewarm(mut self, prewarm: PrewarmConfig) -> GatewayBuilder {
        self.cfg.prewarm = Some(prewarm);
        self
    }

    /// Finishes the policy.
    pub fn build(self) -> GatewayConfig {
        self.cfg
    }
}

/// What the gateway did across one run. Assembled by the driving loop
/// (`gh_faas::gateway` / the cluster front-end); every field is a
/// deterministic function of the request timeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Requests answered (backend completions + cache hits).
    pub served: u64,
    /// Requests answered straight from the result cache.
    pub cache_hits: u64,
    /// Idempotent lookups that missed.
    pub cache_misses: u64,
    /// Cache entries written.
    pub cache_insertions: u64,
    /// Cache entries evicted by the LRU byte budget.
    pub cache_evictions: u64,
    /// Cache entries removed by TTL expiry.
    pub cache_expired: u64,
    /// Cache entries dropped by function redeploys.
    pub cache_invalidated: u64,
    /// Requests shed by per-principal rate limiting.
    pub rejected: u64,
    /// Requests parked (at least once) by the concurrency ceiling.
    pub deferred: u64,
    /// Pre-restore hints issued by the pre-warmer.
    pub prewarm_spawns: u64,
    /// Peak bytes resident in the result cache.
    pub cache_peak_bytes: u64,
}

impl GatewayStats {
    /// Folds the cache's counters in (used by the cluster merge, which
    /// accumulates node-pure partial stats in node-index order).
    pub fn absorb_cache(&mut self, stats: &cache::CacheStats) {
        self.cache_hits += stats.hits;
        self.cache_misses += stats.misses;
        self.cache_insertions += stats.insertions;
        self.cache_evictions += stats.evictions;
        self.cache_expired += stats.expired;
        self.cache_invalidated += stats.invalidated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_sim::Nanos;

    #[test]
    fn disabled_config_enables_nothing() {
        let g = GatewayConfig::disabled();
        assert!(g.cache.is_none() && g.admission.is_none() && g.prewarm.is_none());
        assert!(!g.any_enabled());
    }

    #[test]
    fn builder_sets_exactly_what_was_asked() {
        let g = GatewayConfig::builder()
            .prewarm(PrewarmConfig::flat(Nanos::from_millis(500), 4))
            .build();
        assert!(g.prewarm.is_some());
        assert!(g.cache.is_none());
        assert!(g.admission.is_none());
        assert!(g.any_enabled());
    }

    #[test]
    fn stats_absorb_cache_accumulates() {
        let mut s = GatewayStats::default();
        let c = cache::CacheStats {
            hits: 3,
            misses: 2,
            insertions: 2,
            evictions: 1,
            expired: 1,
            invalidated: 1,
        };
        s.absorb_cache(&c);
        s.absorb_cache(&c);
        assert_eq!(s.cache_hits, 6);
        assert_eq!(s.cache_expired, 2);
        assert_eq!(s.cache_invalidated, 2);
    }
}
