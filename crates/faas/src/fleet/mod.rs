//! The fleet scheduler: an event-driven pool of containers behind a
//! router.
//!
//! §4's claim — "Groundhog restores state *between* activations … and
//! therefore does not contribute to a function's activation latency
//! under low to medium server load" — is a statement about a *fleet*,
//! not a single container: once one container is restoring, the pool
//! still has clean capacity, so a scheduler that knows when restores
//! complete can keep them off every request's critical path even near
//! saturation (the §5.3 throughput and §5.3.4 core-scaling settings).
//!
//! This module drives N containers, each on its own virtual timeline,
//! through one global [`gh_sim::event::EventQueue`]:
//!
//! - [`pool::Pool`] / [`pool::Slot`] — containers plus scheduling state
//!   (admission queue, response/readiness times, restore-overlap
//!   accounting);
//! - [`router::Router`] — Poisson arrivals are assigned per-container by
//!   a pluggable [`router::RoutePolicy`] (round-robin, least-loaded, and
//!   the Groundhog-specific restore-aware policy that routes on the
//!   containers' readiness events);
//! - [`queue::AdmissionQueue`] — requests buffered until the container
//!   is provably clean (§4.5), with queue-depth percentile tracking;
//! - [`autoscaler::Autoscaler`] — optional queue-depth-driven growth and
//!   idle retirement.
//!
//! A pool of one with the round-robin policy reproduces the single
//! container open-loop semantics exactly (see [`crate::openloop`]).
//!
//! # Host-parallel execution
//!
//! [`Fleet::run`] shards eligible runs across host threads: routing
//! decisions are precomputed on the coordinator, container-local
//! invoke/restore work fans out to per-shard event queues
//! (`par::drive_shard`), and the coordinator then replays the global
//! event loop against the recorded per-slot dispatches — the same
//! ordered-merge discipline `gh_bench::harness::run_cells` applies
//! across sweep cells, applied inside one run. The **shard/merge
//! invariant**: a slot's dispatch outcomes depend only on its own
//! arrivals and its own previous readiness, so shard-local processing
//! reproduces the serial per-slot timelines and the replay reproduces
//! the serial interleaving — results are bit-identical to serial,
//! enforced by the differential oracle in `tests/fleet_par_oracle.rs`.
//!
//! The **serial reference** runs instead whenever a run is not
//! provably shardable: the policy is not
//! [`RoutePolicy::RoundRobin`] (least-loaded and restore-aware
//! routing read container state at arrival time, an arrival→readiness
//! data dependence), an autoscaler is configured (growth/retirement
//! mutates the pool mid-run), the pool has fewer than two slots, fewer
//! than two threads are available, or the caller forced it
//! ([`ExecMode::Serial`], `--serial`, `GH_SERIAL=1`).

pub mod autoscaler;
pub(crate) mod par;
pub mod pool;
pub mod queue;
pub mod router;

use gh_functions::FunctionSpec;
use gh_isolation::{StrategyError, StrategyKind};
use gh_sim::event::EventQueue;
use gh_sim::stats::throughput_rps;
use gh_sim::{DetRng, Nanos, QuantileSketch};
use groundhog_core::GroundhogConfig;

use crate::fault::{FaultConfig, FaultPlan, FaultStats};

pub use autoscaler::{AutoscaleConfig, Autoscaler, ScaleAction};
pub use par::ExecMode;
pub use pool::{Dispatched, Pool, PoolMemory, Slot};
pub use queue::{AdmissionQueue, DepthTracker, Pending};
pub use router::{RoutePolicy, Router};

/// Fleet-run configuration (the pool itself carries function, strategy
/// and size).
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Routing policy.
    pub policy: RoutePolicy,
    /// Offered Poisson arrival rate, requests/second.
    pub offered_rps: f64,
    /// Seed of the arrival process (containers seed separately, at pool
    /// construction).
    pub seed: u64,
    /// Distinct principals issuing requests, drawn uniformly. `1` (the
    /// default) sends everything as the single principal `"client"`;
    /// larger values exercise §4.4's per-principal restore decisions.
    pub principals: usize,
    /// Optional autoscaling.
    pub autoscale: Option<AutoscaleConfig>,
}

impl FleetConfig {
    /// A fixed-size fleet at `offered_rps` under `policy`.
    pub fn fixed(policy: RoutePolicy, offered_rps: f64, seed: u64) -> FleetConfig {
        FleetConfig {
            policy,
            offered_rps,
            seed,
            principals: 1,
            autoscale: None,
        }
    }

    /// Same, with traffic drawn from `principals` distinct callers.
    pub fn with_principals(mut self, principals: usize) -> FleetConfig {
        assert!(principals > 0, "need at least one principal");
        self.principals = principals;
        self
    }
}

/// Per-container load figures reported after a run.
#[derive(Clone, Copy, Debug)]
pub struct ContainerLoad {
    /// Requests this container served.
    pub served: u64,
    /// Busy time / active span.
    pub utilization: f64,
    /// Total off-critical-path restore time, ms.
    pub restore_ms: f64,
    /// Restore time that hid in idle gaps (never delayed a request), ms.
    pub restore_hidden_ms: f64,
    /// First-touch lazy-restore faults served inside requests (lazy
    /// restore mode only).
    pub lazy_faults: u64,
    /// Deferred pages the background drain wrote back during idle gaps.
    pub lazy_drained_pages: u64,
    /// Whether the autoscaler retired this container.
    pub retired: bool,
}

/// Fleet-level statistics for one run.
#[derive(Clone, Debug)]
pub struct FleetStats {
    /// Slots in the pool at the end of the run (including retired).
    pub pool_size: usize,
    /// Non-retired slots at the end of the run.
    pub active: usize,
    /// Containers the autoscaler spawned.
    pub spawned: usize,
    /// Containers the autoscaler retired.
    pub retired: usize,
    /// Per-container breakdown.
    pub per_container: Vec<ContainerLoad>,
    /// Mean aggregate queue depth over scheduling events.
    pub queue_mean: f64,
    /// Median aggregate queue depth.
    pub queue_p50: f64,
    /// 95th-percentile aggregate queue depth.
    pub queue_p95: f64,
    /// 99th-percentile aggregate queue depth.
    pub queue_p99: f64,
    /// Total restore time charged across the fleet, ms. Under lazy
    /// restoration this is only the critical-path (DeferArm) component;
    /// the amortized component shows up as `lazy_faults` inside request
    /// execution.
    pub restore_total_ms: f64,
    /// First-touch lazy-restore faults across the fleet.
    pub lazy_faults: u64,
    /// Deferred pages drained during idle gaps across the fleet.
    pub lazy_drained_pages: u64,
    /// Fraction of restore time that overlapped idle gaps (1.0 = every
    /// restore fully hidden; 1.0 also when no restores ran).
    pub restore_overlap_ratio: f64,
    /// Snapshot dedup ratio of the pool-shared store (logical pages per
    /// unique resident frame; 1.0 = no sharing).
    pub snapshot_dedup_ratio: f64,
    /// Snapshot bytes resident across the pool (shared store + per-
    /// container reference tables).
    pub snapshot_resident_bytes: u64,
    /// `snapshot_resident_bytes / pool_size`.
    pub snapshot_bytes_per_container: f64,
    /// Bytes held by the run's statistics (the sojourn and queue-depth
    /// sketches) — constant in the request count by construction.
    pub stats_bytes: u64,
    /// Fault-injection accounting ([`crate::fault`]); all zero on a
    /// fault-free run.
    pub faults: FaultStats,
}

/// Outcome of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Offered arrival rate (requests/second), fleet-wide.
    pub offered_rps: f64,
    /// Completed requests.
    pub completed: usize,
    /// Achieved goodput (completions per second of busy span).
    pub goodput_rps: f64,
    /// Mean sojourn time (arrival → response), ms. Queueing included.
    pub mean_ms: f64,
    /// 99th-percentile sojourn time, ms.
    pub p99_ms: f64,
    /// Mean per-container utilization.
    pub utilization: f64,
    /// Fleet-level detail.
    pub stats: FleetStats,
}

/// Events on the fleet's global virtual timeline.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// A client request reaches the router.
    Arrival,
    /// A container's restore completed; it is provably clean.
    Ready(usize),
    /// A killed request's backoff elapsed; re-queue the parked retry at
    /// this token (fault-injecting runs only).
    Retry(usize),
}

/// Per-slot counter baseline captured at run start (busy, restore
/// total, restore hidden, served, lazy faults, drained pages).
pub(crate) type Baseline = (Nanos, Nanos, Nanos, u64, u64, u64);

/// Deferred pages this slot's background drain wrote back (GH only).
fn drained(s: &Slot) -> u64 {
    match &s.container.strategy {
        gh_isolation::Strategy::Gh(m) => m.stats.lazy_drained_pages,
        _ => 0,
    }
}

/// Next inter-arrival gap of the Poisson arrival process.
pub(crate) fn poisson_gap(offered_rps: f64, rng: &mut DetRng) -> Nanos {
    let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    Nanos::from_millis_f64(-u.ln() / offered_rps * 1e3)
}

/// The event-driven fleet driver. Owns routing and autoscaling state;
/// borrows the pool per run so pools can be kept (e.g. by the platform)
/// across runs.
pub struct Fleet {
    pub(crate) cfg: FleetConfig,
    pub(crate) router: Router,
    pub(crate) autoscaler: Option<Autoscaler>,
    /// Fault plan, present only when injection is active — `None` keeps
    /// every run on the exact fault-free code path (no extra events, no
    /// extra draws), which is what the fault oracle's bit-identity arm
    /// pins.
    pub(crate) faults: Option<FaultPlan>,
    /// Accounting from the most recent faulty run.
    pub(crate) fault_stats: FaultStats,
}

impl Fleet {
    /// Creates a driver for `cfg`.
    pub fn new(cfg: FleetConfig) -> Fleet {
        assert!(cfg.offered_rps > 0.0, "offered load must be positive");
        let router = Router::new(cfg.policy);
        let autoscaler = cfg.autoscale.map(Autoscaler::new);
        Fleet {
            cfg,
            router,
            autoscaler,
            faults: None,
            fault_stats: FaultStats::default(),
        }
    }

    /// Arms fault injection. A config with all rates zero is treated as
    /// absent, so a disabled plan cannot perturb the run even in
    /// principle — the fault-free path is the same machine code either
    /// way.
    pub fn with_faults(mut self, cfg: FaultConfig) -> Fleet {
        self.faults = cfg.is_active().then(|| FaultPlan::new(cfg));
        self
    }

    /// The measurement span opens when the whole initial pool is warm
    /// (every container past Fig. 1 init + snapshot).
    pub(crate) fn span_start(pool: &Pool) -> Nanos {
        pool.slots
            .iter()
            .map(|s| s.ready_at)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Per-slot counter baselines: the result reports *this run's*
    /// deltas, so a pool reused across runs (Platform::run_fleet)
    /// never mixes one run's load figures into the next. Slots the
    /// autoscaler adds mid-run have implicit zero baselines.
    pub(crate) fn baselines(pool: &Pool) -> Vec<Baseline> {
        pool.slots
            .iter()
            .map(|s| {
                (
                    s.busy,
                    s.restore_total,
                    s.restore_hidden,
                    s.served,
                    s.lazy_faults,
                    drained(s),
                )
            })
            .collect()
    }

    /// Drives `requests` Poisson arrivals through `pool` and runs the
    /// queues dry, in [`ExecMode::Auto`] (parallel when eligible — see
    /// the module docs — honoring `--serial`/`GH_SERIAL` and
    /// `GH_THREADS`).
    ///
    /// ```
    /// use gh_faas::fleet::{Fleet, FleetConfig, Pool, RoutePolicy};
    /// use gh_isolation::StrategyKind;
    /// use groundhog_core::GroundhogConfig;
    ///
    /// let spec = gh_functions::catalog::by_name("fannkuch (p)").unwrap();
    /// let cfg = FleetConfig::fixed(RoutePolicy::LeastLoaded, 200.0, 42);
    /// let mut pool = Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 2, 42)?;
    /// let result = Fleet::new(cfg).run(&mut pool, 50)?;
    /// assert_eq!(result.completed, 50);
    /// assert!(result.goodput_rps > 0.0);
    /// # Ok::<(), gh_isolation::StrategyError>(())
    /// ```
    pub fn run(&mut self, pool: &mut Pool, requests: usize) -> Result<FleetResult, StrategyError> {
        self.run_with(pool, requests, ExecMode::Auto)
    }

    /// Drives `requests` arrivals in an explicit [`ExecMode`]. The
    /// parallel path is bit-identical to the serial reference; a run
    /// that is not eligible to shard (non-round-robin policy,
    /// autoscaler configured, pool or thread count below two) runs
    /// serially regardless of `mode`.
    pub fn run_with(
        &mut self,
        pool: &mut Pool,
        requests: usize,
        mode: ExecMode,
    ) -> Result<FleetResult, StrategyError> {
        if requests == 0 {
            // Degenerate run: identical (and empty) in every mode.
            let t_start = Self::span_start(pool);
            let baseline = Self::baselines(pool);
            return Ok(self.finish(
                pool,
                t_start,
                &baseline,
                &DepthTracker::new(),
                &QuantileSketch::new(),
                0,
            ));
        }
        let threads = match mode {
            ExecMode::Serial => 1,
            ExecMode::Parallel { threads } => threads,
            ExecMode::Auto => {
                if par::serial_requested() {
                    1
                } else {
                    par::configured_threads()
                }
            }
        };
        if self.faults.is_some() {
            // Faulty runs take the dedicated serial loop: crash/retry
            // events create arrival→readiness data dependences the
            // shard/merge scheme cannot express. (Cluster runs still
            // parallelize across *nodes* with faults on — see
            // `crate::cluster` — because node timelines stay pure.)
            return self.run_serial_faulty(pool, requests);
        }
        let eligible = threads >= 2
            && self.cfg.policy == RoutePolicy::RoundRobin
            && self.autoscaler.is_none()
            && pool.slots.len() >= 2;
        if eligible {
            self.run_parallel(pool, requests, threads)
        } else {
            self.run_serial(pool, requests)
        }
    }

    /// The bit-exact serial reference: one global event loop on the
    /// caller's thread.
    fn run_serial(
        &mut self,
        pool: &mut Pool,
        requests: usize,
    ) -> Result<FleetResult, StrategyError> {
        let input_kb = pool.spec.input_kb;
        let t_start = Self::span_start(pool);
        let offered_rps = self.cfg.offered_rps;
        let baseline = Self::baselines(pool);
        // The router predicts the critical-path cost of routing a
        // principal to a container that must roll back first (§4.4's
        // deferred-restore mode) from the paper's measured restore time.
        let restore_cost = Nanos::from_millis_f64(pool.spec.paper_restore_ms);
        let mut arrival_rng = DetRng::new(self.cfg.seed ^ 0x09E4_100D);
        // A separate stream: principal draws must not perturb the
        // arrival process (single-principal runs stay bit-identical to
        // the original open-loop harness).
        let mut principal_rng = DetRng::new(self.cfg.seed ^ 0x7E4A_4175);
        let mut events: EventQueue<Event> = EventQueue::new();
        let mut next_arrival = t_start;
        next_arrival += poisson_gap(offered_rps, &mut arrival_rng);
        events.schedule(next_arrival, Event::Arrival);
        let mut generated = 1usize;
        let mut next_id = 1u64;

        let mut depth = DepthTracker::new();
        // Sojourns feed a fixed-size sketch in integer nanoseconds —
        // stats memory stays constant at 10⁶–10⁷ requests per run.
        let mut sojourns = QuantileSketch::new();
        let mut completed = 0usize;

        while let Some((now, ev)) = events.pop() {
            match ev {
                Event::Arrival => {
                    let id = next_id;
                    next_id += 1;
                    let principal = if self.cfg.principals <= 1 {
                        "client".to_string()
                    } else {
                        format!(
                            "user-{}",
                            principal_rng.next_below(self.cfg.principals as u64)
                        )
                    };
                    let idx = self
                        .router
                        .route(now, &principal, restore_cost, &pool.slots);
                    pool.slots[idx].queue.push(Pending {
                        id,
                        principal,
                        input_kb,
                        arrival: now,
                        payload_hash: 0,
                        idempotent: false,
                        attempt: 1,
                    });
                    depth.record(pool.queued());
                    if generated < requests {
                        next_arrival += poisson_gap(offered_rps, &mut arrival_rng);
                        events.schedule(next_arrival, Event::Arrival);
                        generated += 1;
                    }
                    if let Some(d) = pool.slots[idx].dispatch(now)? {
                        sojourns.record_nanos(d.sojourn);
                        completed += 1;
                        events.schedule(d.ready_at, Event::Ready(idx));
                    }
                    self.autoscale(now, pool, &mut events)?;
                }
                Event::Ready(idx) => {
                    if let Some(d) = pool.slots[idx].dispatch(now)? {
                        sojourns.record_nanos(d.sojourn);
                        completed += 1;
                        events.schedule(d.ready_at, Event::Ready(idx));
                    }
                    depth.record(pool.queued());
                }
                Event::Retry(_) => unreachable!("fault-free loop schedules no retries"),
            }
            if completed == requests && pool.queued() == 0 {
                break;
            }
        }
        debug_assert_eq!(completed, requests, "all arrivals must be served");

        Ok(self.finish(pool, t_start, &baseline, &depth, &sojourns, completed))
    }

    /// The fault-injecting serial loop: the serial reference plus
    /// crash / recovery / retry events. Entered only when a
    /// [`FaultPlan`] is armed, so fault-free runs never pay for (or are
    /// perturbed by) any of this.
    ///
    /// Fault semantics per attempt (all draws are pure functions of
    /// `(fault seed, request id, attempt)` — see [`crate::fault`]):
    ///
    /// - **container death**: the head-of-queue request is killed
    ///   partway through execution ([`Slot::crash`] charges the partial
    ///   work plus a full re-init); if attempts remain, the request is
    ///   parked and re-queued after an exponential backoff — on the
    ///   same container (retry-after-restore) or re-routed away from it
    ///   ([`RetryPolicy::reroute`](crate::fault::RetryPolicy)) — else
    ///   it is abandoned;
    /// - **restore failure**: the response is delivered but the
    ///   off-path writeback aborts; the container cold-starts before
    ///   its next admission ([`Slot::fail_restore`]).
    fn run_serial_faulty(
        &mut self,
        pool: &mut Pool,
        requests: usize,
    ) -> Result<FleetResult, StrategyError> {
        let plan = self.faults.expect("faulty loop requires an armed plan");
        let reroute = plan.config().retry.reroute;
        let input_kb = pool.spec.input_kb;
        let t_start = Self::span_start(pool);
        let offered_rps = self.cfg.offered_rps;
        let baseline = Self::baselines(pool);
        let restore_cost = Nanos::from_millis_f64(pool.spec.paper_restore_ms);
        let mut arrival_rng = DetRng::new(self.cfg.seed ^ 0x09E4_100D);
        let mut principal_rng = DetRng::new(self.cfg.seed ^ 0x7E4A_4175);
        let mut events: EventQueue<Event> = EventQueue::new();
        let mut next_arrival = t_start;
        next_arrival += poisson_gap(offered_rps, &mut arrival_rng);
        events.schedule(next_arrival, Event::Arrival);
        let mut generated = 1usize;
        let mut next_id = 1u64;

        let mut depth = DepthTracker::new();
        let mut sojourns = QuantileSketch::new();
        let mut completed = 0usize;
        // Killed requests waiting out their backoff, with the slot they
        // died on; tokens index this table from `Event::Retry`.
        let mut parked: Vec<Option<(Pending, usize)>> = Vec::new();
        let mut parked_live = 0usize;
        let mut stats = FaultStats::default();

        while let Some((now, ev)) = events.pop() {
            match ev {
                Event::Arrival => {
                    let id = next_id;
                    next_id += 1;
                    let principal = if self.cfg.principals <= 1 {
                        "client".to_string()
                    } else {
                        format!(
                            "user-{}",
                            principal_rng.next_below(self.cfg.principals as u64)
                        )
                    };
                    let idx = self
                        .router
                        .route(now, &principal, restore_cost, &pool.slots);
                    pool.slots[idx].queue.push(Pending {
                        id,
                        principal,
                        input_kb,
                        arrival: now,
                        payload_hash: 0,
                        idempotent: false,
                        attempt: 1,
                    });
                    depth.record(pool.queued());
                    if generated < requests {
                        next_arrival += poisson_gap(offered_rps, &mut arrival_rng);
                        events.schedule(next_arrival, Event::Arrival);
                        generated += 1;
                    }
                    Self::dispatch_faulty(
                        &plan,
                        pool,
                        idx,
                        now,
                        &mut events,
                        &mut sojourns,
                        &mut completed,
                        &mut parked,
                        &mut parked_live,
                        &mut stats,
                    )?;
                    self.autoscale(now, pool, &mut events)?;
                }
                Event::Ready(idx) => {
                    Self::dispatch_faulty(
                        &plan,
                        pool,
                        idx,
                        now,
                        &mut events,
                        &mut sojourns,
                        &mut completed,
                        &mut parked,
                        &mut parked_live,
                        &mut stats,
                    )?;
                    depth.record(pool.queued());
                }
                Event::Retry(token) => {
                    let (p, died_on) = parked[token].take().expect("retry token fires once");
                    parked_live -= 1;
                    let idx = if reroute {
                        self.router.route_avoiding(
                            now,
                            &p.principal,
                            restore_cost,
                            &pool.slots,
                            Some(died_on),
                        )
                    } else {
                        died_on
                    };
                    pool.slots[idx].queue.push(p);
                    depth.record(pool.queued());
                    Self::dispatch_faulty(
                        &plan,
                        pool,
                        idx,
                        now,
                        &mut events,
                        &mut sojourns,
                        &mut completed,
                        &mut parked,
                        &mut parked_live,
                        &mut stats,
                    )?;
                }
            }
            if completed + stats.abandoned as usize == requests
                && pool.queued() == 0
                && parked_live == 0
            {
                break;
            }
        }
        debug_assert_eq!(
            completed + stats.abandoned as usize,
            requests,
            "every arrival is served or abandoned"
        );
        self.fault_stats = stats;
        Ok(self.finish(pool, t_start, &baseline, &depth, &sojourns, completed))
    }

    /// One fault-aware dispatch attempt on `idx` at `now` — the faulty
    /// loop's counterpart of `Slot::dispatch` + `Ready` scheduling.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_faulty(
        plan: &FaultPlan,
        pool: &mut Pool,
        idx: usize,
        now: Nanos,
        events: &mut EventQueue<Event>,
        sojourns: &mut QuantileSketch,
        completed: &mut usize,
        parked: &mut Vec<Option<(Pending, usize)>>,
        parked_live: &mut usize,
        stats: &mut FaultStats,
    ) -> Result<(), StrategyError> {
        let slot = &mut pool.slots[idx];
        if !slot.idle_at(now) {
            return Ok(());
        }
        let Some(head) = slot.queue.peek() else {
            return Ok(());
        };
        let (id, attempt) = (head.id, head.attempt);
        if let Some(frac) = plan.death(id, attempt) {
            let (mut pending, ready) = slot.crash(now, frac).expect("idle slot with queued head");
            stats.deaths += 1;
            if plan.death_after_commit(id, attempt) {
                // The crash landed after the attempt's effects applied:
                // the retry (if any) re-executes committed work.
                stats.duplicates += 1;
            }
            if attempt < plan.max_attempts() {
                stats.retries += 1;
                pending.attempt += 1;
                let backoff_at = now + plan.backoff(attempt);
                // Retry-after-restore waits for the recovery too; a
                // rerouted retry only waits out the backoff.
                let retry_at = if plan.config().retry.reroute {
                    backoff_at
                } else {
                    backoff_at.max(ready)
                };
                let token = parked.len();
                parked.push(Some((pending, idx)));
                *parked_live += 1;
                events.schedule(retry_at, Event::Retry(token));
            } else {
                stats.abandoned += 1;
            }
            events.schedule(ready, Event::Ready(idx));
            return Ok(());
        }
        if let Some(d) = slot.dispatch(now)? {
            sojourns.record_nanos(d.sojourn);
            *completed += 1;
            let ready = if plan.restore_failure(id, attempt) {
                stats.restore_failures += 1;
                slot.fail_restore()
            } else {
                d.ready_at
            };
            events.schedule(ready, Event::Ready(idx));
        }
        Ok(())
    }

    /// The sharded path: plan on the coordinator, fan container-local
    /// invoke/restore work out to per-shard event queues, then replay
    /// the global loop against the recorded dispatches (see the module
    /// docs and [`par`]). Callers guarantee eligibility: round-robin
    /// policy, no autoscaler, ≥ 2 slots, ≥ 2 threads, ≥ 1 request.
    fn run_parallel(
        &mut self,
        pool: &mut Pool,
        requests: usize,
        threads: usize,
    ) -> Result<FleetResult, StrategyError> {
        let input_kb = pool.spec.input_kb;
        let t_start = Self::span_start(pool);
        let offered_rps = self.cfg.offered_rps;
        let baseline = Self::baselines(pool);
        let restore_cost = Nanos::from_millis_f64(pool.spec.paper_restore_ms);

        // Phase 1 — plan: draw the arrival process (same RNG streams and
        // per-stream draw order as the serial loop) and route every
        // request with a *clone* of the router — round-robin routing
        // reads only the slots' static retired flags, so pre-run
        // decisions are exact. The real router advances during the
        // phase-3 replay, ending with the cursor the serial run leaves.
        let mut arrival_rng = DetRng::new(self.cfg.seed ^ 0x09E4_100D);
        let mut principal_rng = DetRng::new(self.cfg.seed ^ 0x7E4A_4175);
        let mut planner = self.router.clone();
        let mut plan: Vec<par::Arrival> = Vec::with_capacity(requests);
        let mut next_arrival = t_start;
        for i in 0..requests {
            next_arrival += poisson_gap(offered_rps, &mut arrival_rng);
            let principal = if self.cfg.principals <= 1 {
                "client".to_string()
            } else {
                format!(
                    "user-{}",
                    principal_rng.next_below(self.cfg.principals as u64)
                )
            };
            let slot = planner.route(next_arrival, &principal, restore_cost, &pool.slots);
            plan.push(par::Arrival {
                at: next_arrival,
                id: i as u64 + 1,
                principal,
                slot,
            });
        }

        // Pre-shard readiness, so the phase-3 mirrors start from the
        // same per-slot state the serial loop would see.
        let ready0: Vec<Nanos> = pool.slots.iter().map(|s| s.ready_at).collect();

        // Phase 2 — shard: contiguous slot slices fan out across scoped
        // workers; only container-local work runs off the coordinator.
        let n_slots = pool.slots.len();
        let mut outs: Vec<Vec<Dispatched>> = (0..n_slots).map(|_| Vec::new()).collect();
        let chunk = n_slots.div_ceil(threads);
        std::thread::scope(|scope| {
            let plan = &plan;
            let handles: Vec<_> = pool
                .slots
                .chunks_mut(chunk)
                .zip(outs.chunks_mut(chunk))
                .enumerate()
                .map(|(si, (slots, outs))| {
                    scope.spawn(move || par::drive_shard(slots, si * chunk, plan, input_kb, outs))
                })
                .collect();
            handles
                .into_iter()
                .try_for_each(|h| h.join().expect("shard worker panicked"))
        })?;

        // Phase 3 — merge: replay the serial event loop against per-slot
        // mirrors, consuming the recorded dispatches. The replay issues
        // the same schedule calls in the same order as the serial loop,
        // so tie-breaking sequence numbers — and therefore pop order,
        // sojourn ordering and depth samples — match bit for bit.
        struct Mirror {
            qlen: usize,
            ready_at: Nanos,
            next: usize,
        }
        #[allow(clippy::too_many_arguments)]
        fn mirror_dispatch(
            m: &mut Mirror,
            idx: usize,
            now: Nanos,
            outs: &[Vec<Dispatched>],
            events: &mut EventQueue<Event>,
            sojourns: &mut QuantileSketch,
            completed: &mut usize,
            queued_total: &mut usize,
        ) {
            if m.ready_at <= now && m.qlen > 0 {
                let d = outs[idx][m.next];
                m.next += 1;
                m.qlen -= 1;
                *queued_total -= 1;
                sojourns.record_nanos(d.sojourn);
                *completed += 1;
                events.schedule(d.ready_at, Event::Ready(idx));
                m.ready_at = d.ready_at;
            }
        }
        let mut mirrors: Vec<Mirror> = ready0
            .into_iter()
            .map(|r| Mirror {
                qlen: 0,
                ready_at: r,
                next: 0,
            })
            .collect();
        let mut events: EventQueue<Event> = EventQueue::new();
        let mut depth = DepthTracker::new();
        let mut sojourns = QuantileSketch::new();
        let mut completed = 0usize;
        let mut queued_total = 0usize;
        let mut next_plan = 0usize;
        let mut generated = 1usize;
        events.schedule(plan[0].at, Event::Arrival);

        while let Some((now, ev)) = events.pop() {
            match ev {
                Event::Arrival => {
                    let a = &plan[next_plan];
                    next_plan += 1;
                    let idx = self
                        .router
                        .route(now, &a.principal, restore_cost, &pool.slots);
                    debug_assert_eq!(idx, a.slot, "replay route diverged from plan");
                    mirrors[idx].qlen += 1;
                    queued_total += 1;
                    depth.record(queued_total);
                    if generated < requests {
                        events.schedule(plan[generated].at, Event::Arrival);
                        generated += 1;
                    }
                    mirror_dispatch(
                        &mut mirrors[idx],
                        idx,
                        now,
                        &outs,
                        &mut events,
                        &mut sojourns,
                        &mut completed,
                        &mut queued_total,
                    );
                }
                Event::Ready(idx) => {
                    mirror_dispatch(
                        &mut mirrors[idx],
                        idx,
                        now,
                        &outs,
                        &mut events,
                        &mut sojourns,
                        &mut completed,
                        &mut queued_total,
                    );
                    depth.record(queued_total);
                }
                Event::Retry(_) => unreachable!("parallel runs are fault-free by eligibility"),
            }
            if completed == requests && queued_total == 0 {
                break;
            }
        }
        debug_assert_eq!(completed, requests, "all arrivals must be served");
        debug_assert!(
            mirrors
                .iter()
                .enumerate()
                .all(|(i, m)| m.next == outs[i].len()),
            "every recorded dispatch must be consumed by the replay"
        );

        Ok(self.finish(pool, t_start, &baseline, &depth, &sojourns, completed))
    }

    /// Shared result assembly: settles trailing restores and folds the
    /// pool's post-run state into a [`FleetResult`]. Both execution
    /// paths end here, so the report derivation is identical by
    /// construction.
    pub(crate) fn finish(
        &self,
        pool: &mut Pool,
        t_start: Nanos,
        baseline: &[Baseline],
        depth: &DepthTracker,
        sojourns: &QuantileSketch,
        completed: usize,
    ) -> FleetResult {
        for s in &mut pool.slots {
            s.settle();
        }
        let span_end = pool
            .slots
            .iter()
            .map(|s| s.container.now())
            .max()
            .unwrap_or(t_start);
        let span = span_end - t_start;

        let per_container: Vec<ContainerLoad> = pool
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (base_busy, base_total, base_hidden, base_served, base_lazy, base_drained) =
                    baseline.get(i).copied().unwrap_or_default();
                let busy = s.busy - base_busy;
                let active_start = s.spawned_at.max(t_start);
                let active_span = span_end.saturating_sub(active_start);
                ContainerLoad {
                    served: s.served - base_served,
                    utilization: if active_span.is_zero() {
                        0.0
                    } else {
                        (busy.as_secs_f64() / active_span.as_secs_f64()).min(1.0)
                    },
                    restore_ms: (s.restore_total - base_total).as_millis_f64(),
                    restore_hidden_ms: (s.restore_hidden - base_hidden).as_millis_f64(),
                    lazy_faults: s.lazy_faults - base_lazy,
                    lazy_drained_pages: drained(s) - base_drained,
                    retired: s.retired,
                }
            })
            .collect();
        let restore_total: Nanos = pool
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| s.restore_total - baseline.get(i).map(|b| b.1).unwrap_or_default())
            .sum();
        let restore_hidden: Nanos = pool
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| s.restore_hidden - baseline.get(i).map(|b| b.2).unwrap_or_default())
            .sum();
        let restore_overlap_ratio = if restore_total.is_zero() {
            1.0
        } else {
            restore_hidden.as_secs_f64() / restore_total.as_secs_f64()
        };
        let utilization = if per_container.is_empty() {
            0.0
        } else {
            per_container.iter().map(|c| c.utilization).sum::<f64>() / per_container.len() as f64
        };
        let mean_ms = sojourns.mean_ms();
        let depth_pcts = depth.percentiles(&[50.0, 95.0, 99.0]);
        let (spawned, retired) = self
            .autoscaler
            .as_ref()
            .map(|a| (a.grown, a.retired))
            .unwrap_or((0, 0));
        let lazy_faults = per_container.iter().map(|c| c.lazy_faults).sum();
        let lazy_drained_pages = per_container.iter().map(|c| c.lazy_drained_pages).sum();
        let memory = pool.memory();
        FleetResult {
            offered_rps: self.cfg.offered_rps,
            completed,
            goodput_rps: throughput_rps(completed, span),
            mean_ms,
            p99_ms: sojourns.quantile_ms(99.0),
            utilization,
            stats: FleetStats {
                pool_size: pool.slots.len(),
                active: pool.active(),
                spawned,
                retired,
                per_container,
                queue_mean: depth.mean(),
                queue_p50: depth_pcts[0],
                queue_p95: depth_pcts[1],
                queue_p99: depth_pcts[2],
                restore_total_ms: restore_total.as_millis_f64(),
                lazy_faults,
                lazy_drained_pages,
                restore_overlap_ratio,
                snapshot_dedup_ratio: memory.dedup_ratio,
                snapshot_resident_bytes: memory.resident_bytes,
                snapshot_bytes_per_container: memory.resident_bytes_per_container,
                stats_bytes: 2 * QuantileSketch::memory_bytes() as u64,
                faults: self.fault_stats,
            },
        }
    }

    /// One autoscaler observation; applies at most one action.
    fn autoscale(
        &mut self,
        now: Nanos,
        pool: &mut Pool,
        events: &mut EventQueue<Event>,
    ) -> Result<(), StrategyError> {
        let Some(scaler) = self.autoscaler.as_mut() else {
            return Ok(());
        };
        match scaler.observe(now, pool) {
            Some(ScaleAction::Grow) => {
                let (idx, ready) = pool.grow(now)?;
                // The new container announces readiness once initialized.
                events.schedule(ready, Event::Ready(idx));
                scaler.applied(now, ScaleAction::Grow);
            }
            Some(ScaleAction::Retire(idx)) => {
                pool.retire(idx);
                scaler.applied(now, ScaleAction::Retire(idx));
            }
            None => {}
        }
        Ok(())
    }
}

/// Builds a pool of `pool_size` containers and drives `requests` through
/// it — the one-call entry point used by benches and examples.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet(
    spec: &FunctionSpec,
    kind: StrategyKind,
    gh: GroundhogConfig,
    pool_size: usize,
    cfg: FleetConfig,
    requests: usize,
) -> Result<FleetResult, StrategyError> {
    run_fleet_with(spec, kind, gh, pool_size, cfg, requests, ExecMode::Auto)
}

/// [`run_fleet`] with an explicit [`ExecMode`] — the entry point of the
/// serial-vs-parallel differential oracle and the determinism CI job.
#[allow(clippy::too_many_arguments)]
pub fn run_fleet_with(
    spec: &FunctionSpec,
    kind: StrategyKind,
    gh: GroundhogConfig,
    pool_size: usize,
    cfg: FleetConfig,
    requests: usize,
    mode: ExecMode,
) -> Result<FleetResult, StrategyError> {
    let seed = cfg.seed;
    let mut pool = Pool::build(spec, kind, gh, pool_size, seed)?;
    Fleet::new(cfg).run_with(&mut pool, requests, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_functions::catalog::by_name;

    fn run(
        kind: StrategyKind,
        pool_size: usize,
        policy: RoutePolicy,
        rps: f64,
        requests: usize,
        seed: u64,
    ) -> FleetResult {
        let spec = by_name("fannkuch (p)").unwrap();
        run_fleet(
            &spec,
            kind,
            GroundhogConfig::gh(),
            pool_size,
            FleetConfig::fixed(policy, rps, seed),
            requests,
        )
        .unwrap()
    }

    #[test]
    fn all_requests_complete_and_stats_cohere() {
        let r = run(
            StrategyKind::Gh,
            3,
            RoutePolicy::RestoreAware,
            90.0,
            150,
            11,
        );
        assert_eq!(r.completed, 150);
        assert_eq!(r.stats.pool_size, 3);
        assert_eq!(r.stats.active, 3);
        assert_eq!(
            r.stats.per_container.iter().map(|c| c.served).sum::<u64>(),
            150
        );
        assert!(r.goodput_rps > 0.0);
        assert!(r.p99_ms >= r.mean_ms);
        assert!((0.0..=1.0).contains(&r.utilization));
        assert!((0.0..=1.0).contains(&r.stats.restore_overlap_ratio));
        assert!(
            r.stats.restore_total_ms > 0.0,
            "GH restores after every request"
        );
        assert!(r.stats.queue_p99 >= r.stats.queue_p50);
        // Pool snapshot memory dedups in the shared store.
        assert!(
            r.stats.snapshot_dedup_ratio > 2.5,
            "3 containers should share their base image: {:.2}",
            r.stats.snapshot_dedup_ratio
        );
        assert!(r.stats.snapshot_resident_bytes > 0);
        assert!(
            (r.stats.snapshot_bytes_per_container * r.stats.pool_size as f64
                - r.stats.snapshot_resident_bytes as f64)
                .abs()
                < 1.0,
            "per-container figure is resident bytes over pool size"
        );
    }

    #[test]
    fn base_fleet_reports_full_overlap() {
        let r = run(StrategyKind::Base, 2, RoutePolicy::RoundRobin, 50.0, 60, 3);
        assert_eq!(r.stats.restore_total_ms, 0.0);
        assert_eq!(r.stats.restore_overlap_ratio, 1.0, "vacuously hidden");
    }

    #[test]
    fn low_load_hides_restores_across_pool() {
        let r = run(StrategyKind::Gh, 4, RoutePolicy::RestoreAware, 40.0, 200, 5);
        assert!(r.utilization < 0.35, "low load: {:.2}", r.utilization);
        assert!(
            r.stats.restore_overlap_ratio > 0.9,
            "restores should hide in idle gaps: {:.2}",
            r.stats.restore_overlap_ratio
        );
    }

    #[test]
    fn more_containers_cut_queueing_at_fixed_load() {
        let small = run(
            StrategyKind::Gh,
            1,
            RoutePolicy::RestoreAware,
            150.0,
            200,
            7,
        );
        let large = run(
            StrategyKind::Gh,
            4,
            RoutePolicy::RestoreAware,
            150.0,
            200,
            7,
        );
        assert!(
            large.mean_ms < small.mean_ms / 2.0,
            "pool of 4 must beat pool of 1: {:.1}ms vs {:.1}ms",
            large.mean_ms,
            small.mean_ms
        );
        assert!(large.stats.queue_p99 <= small.stats.queue_p99);
    }

    #[test]
    fn faulty_fleet_retries_and_accounts() {
        let spec = by_name("fannkuch (p)").unwrap();
        let mut pool = Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 2, 21).unwrap();
        let fcfg = crate::fault::FaultConfig {
            restore_failure_rate: 0.02,
            ..crate::fault::FaultConfig::deaths(5, 0.08)
        };
        let r = Fleet::new(FleetConfig::fixed(RoutePolicy::RoundRobin, 60.0, 21))
            .with_faults(fcfg)
            .run(&mut pool, 300)
            .unwrap();
        let f = r.stats.faults;
        assert!(f.deaths > 0, "8% death rate over 300 requests must fire");
        assert_eq!(
            f.retries,
            f.deaths - f.abandoned,
            "every death short of the attempt bound schedules a retry"
        );
        assert_eq!(r.completed + f.abandoned as usize, 300);
        assert!(
            r.stats.per_container.iter().map(|c| c.served).sum::<u64>() == r.completed as u64,
            "served counts crashed attempts never"
        );
    }

    #[test]
    fn rerouting_retries_complete_too() {
        let spec = by_name("fannkuch (p)").unwrap();
        let mut pool = Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 3, 9).unwrap();
        let fcfg = crate::fault::FaultConfig {
            retry: crate::fault::RetryPolicy::rerouting(),
            ..crate::fault::FaultConfig::deaths(5, 0.1)
        };
        let r = Fleet::new(FleetConfig::fixed(RoutePolicy::LeastLoaded, 60.0, 9))
            .with_faults(fcfg)
            .run(&mut pool, 200)
            .unwrap();
        let f = r.stats.faults;
        assert!(f.deaths > 0);
        assert_eq!(r.completed + f.abandoned as usize, 200);
    }

    #[test]
    fn inert_fault_config_is_not_armed() {
        let spec = by_name("fannkuch (p)").unwrap();
        let cfg = FleetConfig::fixed(RoutePolicy::RestoreAware, 90.0, 11);
        let mut p1 = Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 2, 11).unwrap();
        let mut p2 = Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 2, 11).unwrap();
        let plain = Fleet::new(cfg.clone()).run(&mut p1, 80).unwrap();
        let gated = Fleet::new(cfg)
            .with_faults(crate::fault::FaultConfig::none(5))
            .run(&mut p2, 80)
            .unwrap();
        assert_eq!(format!("{plain:?}"), format!("{gated:?}"));
        assert!(gated.stats.faults.is_empty());
    }

    #[test]
    fn autoscaler_grows_under_overload() {
        let spec = by_name("fannkuch (p)").unwrap();
        let cfg = FleetConfig {
            policy: RoutePolicy::RestoreAware,
            offered_rps: 400.0,
            seed: 13,
            principals: 1,
            autoscale: Some(AutoscaleConfig {
                min_size: 1,
                max_size: 6,
                scale_up_depth: 2.0,
                idle_retire: Nanos::from_secs(5),
                cooldown: Nanos::from_millis(200),
            }),
        };
        let r = run_fleet(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 1, cfg, 300).unwrap();
        assert!(r.stats.spawned > 0, "overload must trigger growth");
        assert_eq!(r.completed, 300);
        assert_eq!(
            r.stats.pool_size,
            1 + r.stats.spawned,
            "every spawn adds a slot"
        );
    }

    #[test]
    fn autoscaler_retires_when_idle() {
        let spec = by_name("fannkuch (p)").unwrap();
        let cfg = FleetConfig {
            policy: RoutePolicy::RoundRobin,
            offered_rps: 2.0, // ~1% utilization: most of the pool idles
            seed: 17,
            principals: 1,
            autoscale: Some(AutoscaleConfig {
                min_size: 1,
                max_size: 4,
                scale_up_depth: 4.0,
                idle_retire: Nanos::from_millis(500),
                cooldown: Nanos::from_millis(100),
            }),
        };
        let r = run_fleet(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 4, cfg, 80).unwrap();
        assert!(r.stats.retired > 0, "idle containers must retire");
        assert!(r.stats.active < 4);
        assert_eq!(r.completed, 80);
    }
}
