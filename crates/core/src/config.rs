//! Groundhog configuration knobs.
//!
//! Defaults correspond to the paper's `GH` configuration; individual
//! fields are the ablation axes of DESIGN.md §7.

/// Which memory-tracking backend to use (§4.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TrackerKind {
    /// Soft-dirty bits: cheap per-fault, restore scans the full pagemap.
    #[default]
    SoftDirty,
    /// Userfaultfd write-protection: expensive per-fault notifications,
    /// no scan at restore. "Faster ... only when the number of dirtied
    /// pages was close to zero."
    Uffd,
}

/// How the page-writeback portion of a restore reaches the process
/// (§5.5 sketches deferring it; "How Low Can You Go?" shows restore
/// floors are dominated by paging work that can overlap execution).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RestoreMode {
    /// Write every restore-set page back on the inter-request critical
    /// path (the paper's implementation).
    #[default]
    Eager,
    /// Defer the writeback: the restore plan's `DeferArm` pass
    /// write-protects/unmaps the restore set against the snapshot image
    /// and each page is faulted in from the snapshot on first touch
    /// during the next request (one [`lazy_fault`] per touched page).
    /// Isolation is preserved — a request can never observe stale
    /// contents because every access of a pending page is intercepted —
    /// but untouched pages carry their obligation forward.
    ///
    /// [`lazy_fault`]: gh_sim::CostModel::lazy_fault
    Lazy {
        /// Write back still-pending pages during idle time between
        /// requests (a background drain that consumes idle gaps and
        /// never delays an arriving request). Off, pending pages are
        /// restored purely on demand.
        drain: bool,
    },
}

impl RestoreMode {
    /// True for either lazy variant.
    pub fn is_lazy(self) -> bool {
        matches!(self, RestoreMode::Lazy { .. })
    }

    /// Short label for tables and CSVs.
    pub fn label(self) -> &'static str {
        match self {
            RestoreMode::Eager => "eager",
            RestoreMode::Lazy { drain: false } => "lazy",
            RestoreMode::Lazy { drain: true } => "lazy+drain",
        }
    }
}

/// Configuration of a Groundhog manager instance.
#[derive(Clone, Debug)]
pub struct GroundhogConfig {
    /// Tracking backend.
    pub tracker: TrackerKind,
    /// Restore dirtied pages at all. `false` is the paper's `GHNOP`
    /// configuration: tracking armed once, no rollback — an optimization
    /// for consecutive same-trust requests, *not* an isolation mode.
    pub restore_enabled: bool,
    /// Whether the restore set is written back eagerly or faulted in on
    /// demand during the next request.
    pub restore_mode: RestoreMode,
    /// Coalesce contiguous dirty pages into single copy operations
    /// (§5.2.2's slope change at ~60% dirtied).
    pub coalesce: bool,
    /// Parallel copy lanes for the page-writeback pass of the restore
    /// plan. `1` (the paper's implementation) runs the serial copy loop
    /// bit-for-bit; higher values split the coalesced runs across lanes
    /// and charge the wall-clock of the slowest lane plus a fork/join
    /// handoff per extra lane. Serialized phases (syscall injection,
    /// tracker re-arm, registers) stay serial regardless.
    pub restore_lanes: usize,
    /// Skip rollback when consecutive requests share a principal (§4.4's
    /// "mutually trusting callers" optimization). Defers the restore to
    /// the next request's arrival, when the principal is known.
    pub skip_same_principal: bool,
    /// Issue a deployer-provided dummy request before snapshotting (§4.1)
    /// to trigger lazy paging / class loading.
    pub dummy_warm: bool,
    /// Zero the stack during restore (§4.4).
    pub zero_stack: bool,
    /// `madvise(DONTNEED)` pages that became resident since the snapshot
    /// (§4.4 "madvises newly paged pages").
    pub madvise_new: bool,
    /// Store the snapshot as copy-on-write frame references instead of
    /// eager page copies — §5.5's proposed optimization: "memory overhead
    /// could easily be reduced to be proportional to the number of dirtied
    /// pages at the cost of a one-time on-critical-path copy-on-write per
    /// unique modified page in the function's life-cycle".
    pub cow_snapshot: bool,
    /// Virtualize time across restores (§5.3.1's proposed fix for
    /// time-driven GC: "the process restoration resets the time to the
    /// original time of the snapshot"): the platform re-bases the
    /// runtime's in-memory clock after each rollback so collectors do not
    /// observe the rewind.
    pub virtualize_time: bool,
}

impl Default for GroundhogConfig {
    fn default() -> Self {
        GroundhogConfig {
            tracker: TrackerKind::SoftDirty,
            restore_enabled: true,
            restore_mode: RestoreMode::Eager,
            coalesce: true,
            restore_lanes: 1,
            skip_same_principal: false,
            dummy_warm: true,
            zero_stack: true,
            madvise_new: true,
            cow_snapshot: false,
            virtualize_time: false,
        }
    }
}

impl GroundhogConfig {
    /// The paper's `GH` configuration.
    pub fn gh() -> Self {
        Self::default()
    }

    /// The paper's `GHNOP` configuration: track but never restore.
    pub fn ghnop() -> Self {
        GroundhogConfig {
            restore_enabled: false,
            ..Self::default()
        }
    }

    /// `GH` with the page-writeback pass split across `lanes` parallel
    /// copy lanes.
    pub fn with_lanes(lanes: usize) -> Self {
        GroundhogConfig {
            restore_lanes: lanes.max(1),
            ..Self::default()
        }
    }

    /// `GH` with on-demand (lazy) restoration, no background drain.
    pub fn lazy() -> Self {
        GroundhogConfig {
            restore_mode: RestoreMode::Lazy { drain: false },
            ..Self::default()
        }
    }

    /// `GH` with on-demand restoration plus the idle-time background
    /// drain.
    pub fn lazy_drain() -> Self {
        GroundhogConfig {
            restore_mode: RestoreMode::Lazy { drain: true },
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gh_defaults() {
        let c = GroundhogConfig::gh();
        assert!(c.restore_enabled);
        assert!(c.coalesce);
        assert_eq!(c.restore_lanes, 1, "the paper's serial copy loop");
        assert!(!c.skip_same_principal);
        assert!(c.dummy_warm);
        assert_eq!(c.tracker, TrackerKind::SoftDirty);
    }

    #[test]
    fn with_lanes_clamps_to_one() {
        assert_eq!(GroundhogConfig::with_lanes(0).restore_lanes, 1);
        assert_eq!(GroundhogConfig::with_lanes(4).restore_lanes, 4);
    }

    #[test]
    fn ghnop_disables_restore_only() {
        let c = GroundhogConfig::ghnop();
        assert!(!c.restore_enabled);
        assert!(c.dummy_warm, "GHNOP still snapshots and warms");
    }

    #[test]
    fn restore_modes() {
        assert_eq!(GroundhogConfig::gh().restore_mode, RestoreMode::Eager);
        assert!(!RestoreMode::Eager.is_lazy());
        let l = GroundhogConfig::lazy();
        assert_eq!(l.restore_mode, RestoreMode::Lazy { drain: false });
        assert!(l.restore_mode.is_lazy());
        assert!(l.restore_enabled, "lazy is still an isolation mode");
        let d = GroundhogConfig::lazy_drain();
        assert_eq!(d.restore_mode, RestoreMode::Lazy { drain: true });
        assert_eq!(RestoreMode::Eager.label(), "eager");
        assert_eq!(RestoreMode::Lazy { drain: false }.label(), "lazy");
        assert_eq!(RestoreMode::Lazy { drain: true }.label(), "lazy+drain");
    }
}
