//! Criterion bench: soft-dirty vs userfaultfd tracking backends (§4.3)
//! at the implementation level — arm + dirty + collect cycles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gh_mem::{Perms, Taint, Touch, VmaKind, Vpn};
use gh_proc::{Kernel, Pid, PtraceSession};
use groundhog_core::track::{make_tracker, MemoryTracker};
use groundhog_core::TrackerKind;

const PAGES: u64 = 16_384;

fn build() -> (Kernel, Pid, Vpn) {
    let mut kernel = Kernel::boot();
    let pid = kernel.spawn("tracked");
    let start = kernel
        .run_charged(pid, |p, frames| {
            let r = p.mem.mmap(PAGES, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(1), Taint::Clean, frames)
                    .unwrap();
            }
            r.start
        })
        .unwrap()
        .0;
    (kernel, pid, start)
}

fn cycle(
    kernel: &mut Kernel,
    pid: Pid,
    start: Vpn,
    tracker: &mut dyn MemoryTracker,
    dirty: u64,
) -> usize {
    {
        let mut s = PtraceSession::attach(kernel, pid).unwrap();
        s.interrupt_all().unwrap();
        tracker.arm(&mut s).unwrap();
        s.detach().unwrap();
    }
    kernel
        .run_charged(pid, |p, frames| {
            for i in 0..dirty {
                let _ = p.mem.touch(
                    Vpn(start.0 + i * 3 % PAGES),
                    Touch::WriteWord(i),
                    Taint::Clean,
                    frames,
                );
            }
        })
        .unwrap();
    let mut s = PtraceSession::attach(kernel, pid).unwrap();
    s.interrupt_all().unwrap();
    let report = tracker.collect(&mut s).unwrap();
    s.detach().unwrap();
    report.dirty.len()
}

fn bench_backends(c: &mut Criterion) {
    for kind in [TrackerKind::SoftDirty, TrackerKind::Uffd] {
        let mut group = c.benchmark_group(format!("{kind:?}"));
        group.sample_size(10);
        for dirty in [16u64, 1024] {
            let (mut kernel, pid, start) = build();
            let mut tracker = make_tracker(kind);
            group.bench_with_input(BenchmarkId::from_parameter(dirty), &dirty, |b, &d| {
                b.iter(|| black_box(cycle(&mut kernel, pid, start, tracker.as_mut(), d)))
            });
        }
        group.finish();
    }
}

/// The O(dirty) claim at the host level: a soft-dirty collection over a
/// large mapped space must cost what the dirty set costs, not what the
/// mapped space costs — the extent/index structures make `collect` an
/// index scan.
fn bench_scan_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sd_scan_vs_mapped");
    group.sample_size(10);
    for pages in [16_384u64, 262_144] {
        let mut kernel = Kernel::boot();
        let pid = kernel.spawn("scan");
        let start = kernel
            .run_charged(pid, |p, frames| {
                let r = p.mem.mmap(pages, Perms::RW, VmaKind::Anon).unwrap();
                for vpn in r.iter() {
                    p.mem
                        .touch(vpn, Touch::WriteWord(1), Taint::Clean, frames)
                        .unwrap();
                }
                r.start
            })
            .unwrap()
            .0;
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        {
            let mut s = PtraceSession::attach(&mut kernel, pid).unwrap();
            s.interrupt_all().unwrap();
            tracker.arm(&mut s).unwrap();
            s.detach().unwrap();
        }
        // Fixed 256-page dirty set regardless of the mapped size.
        kernel
            .run_charged(pid, |p, frames| {
                for i in 0..256u64 {
                    p.mem
                        .touch(
                            Vpn(start.0 + i * (pages / 256)),
                            Touch::WriteWord(i),
                            Taint::Clean,
                            frames,
                        )
                        .unwrap();
                }
            })
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(pages), &pages, |b, _| {
            b.iter(|| {
                let mut s = PtraceSession::attach(&mut kernel, pid).unwrap();
                s.interrupt_all().unwrap();
                let report = black_box(tracker.collect(&mut s).unwrap());
                s.detach().unwrap();
                report.dirty.len()
            })
        });
    }
    group.finish();
}

/// Batched vs per-page touch execution: the request executor's shape
/// (strided writes + read sweep) applied through `touch` one page at a
/// time versus one `TouchBatch` cursor walk, in the warm steady state
/// and with a soft-dirty re-arm before every application (the Groundhog
/// per-request cycle). The `scaling_touch_*` gate in `bench_smoke`
/// tracks the same ratio; this group gives criterion-grade curves.
fn bench_touch_batch(c: &mut Criterion) {
    use gh_mem::{RequestId, TouchBatch};
    const DIRTY: u64 = PAGES / 3;
    for rearm in [false, true] {
        let mut group = c.benchmark_group(if rearm {
            "touch_batch_armed"
        } else {
            "touch_batch_warm"
        });
        group.sample_size(10);
        // Per-page loop.
        let (mut kernel, pid, start) = build();
        group.bench_function("loop", |b| {
            b.iter(|| {
                if rearm {
                    kernel.process_mut(pid).unwrap().mem.clear_soft_dirty();
                }
                kernel
                    .run_charged(pid, |p, frames| {
                        for i in 0..DIRTY {
                            let _ = p.mem.touch(
                                Vpn(start.0 + i * 3),
                                Touch::WriteWord(i),
                                Taint::One(RequestId(1)),
                                frames,
                            );
                        }
                        for i in 0..PAGES {
                            let _ =
                                p.mem
                                    .touch(Vpn(start.0 + i), Touch::Read, Taint::Clean, frames);
                        }
                    })
                    .unwrap();
            })
        });
        // Batched.
        let (mut kernel, pid, start) = build();
        let mut batch = TouchBatch::with_capacity(PAGES as usize);
        group.bench_function("batch", |b| {
            b.iter(|| {
                if rearm {
                    kernel.process_mut(pid).unwrap().mem.clear_soft_dirty();
                }
                batch.clear();
                for i in 0..DIRTY {
                    batch.push(
                        Vpn(start.0 + i * 3),
                        Touch::WriteWord(i),
                        Taint::One(RequestId(1)),
                    );
                }
                kernel.touch_batch_charged(pid, &batch).unwrap();
                batch.clear();
                for i in 0..PAGES {
                    batch.push(Vpn(start.0 + i), Touch::Read, Taint::Clean);
                }
                black_box(kernel.touch_batch_charged(pid, &batch).unwrap());
            })
        });
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_backends,
    bench_scan_scaling,
    bench_touch_batch
);
criterion_main!(benches);
