//! Simulation substrate: virtual time, calibrated cost model, statistics.
//!
//! The Groundhog paper ([Alzayat et al., EuroSys 2023]) measures a real
//! system: a Linux kernel, OpenWhisk, and language runtimes on a physical
//! cluster. This reproduction replaces wall-clock time with a *virtual
//! clock* and a *cost model* whose constants are calibrated against the
//! paper's own measurements (Table 3, Fig. 8, §5.2). Every simulated kernel
//! operation — page fault, PTE scan, page copy, syscall injection, ptrace
//! stop — charges its cost to the virtual clock, so latency/throughput
//! *shapes* (linear trends, crossovers, slope changes) are reproduced from
//! first principles rather than replayed.
//!
//! This crate is dependency-free and is used by every other crate in the
//! workspace.
//!
//! [Alzayat et al., EuroSys 2023]: https://arxiv.org/abs/2205.11458

pub mod clock;
pub mod cost;
pub mod event;
pub mod report;
pub mod rng;
pub mod sketch;
pub mod stats;
pub mod time;

pub use clock::VirtualClock;
pub use cost::{ChargeModel, CostModel, ScanShape};
pub use rng::DetRng;
pub use sketch::QuantileSketch;
pub use stats::Summary;
pub use time::Nanos;
