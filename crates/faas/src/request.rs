//! Requests and responses at the platform boundary.

use gh_sim::Nanos;

/// A function invocation request as received by the controller.
#[derive(Clone, Debug)]
pub struct Request {
    /// Globally unique request id (also the taint label).
    pub id: u64,
    /// The authenticated caller (§2's per-caller credentials).
    pub principal: String,
    /// Input payload size, KiB.
    pub input_kb: u64,
}

impl Request {
    /// Creates a request.
    pub fn new(id: u64, principal: &str, input_kb: u64) -> Request {
        Request {
            id,
            principal: principal.to_string(),
            input_kb,
        }
    }
}

/// The response returned to the end client.
#[derive(Clone, Debug)]
pub struct Response {
    /// Request this answers.
    pub request_id: u64,
    /// Whether execution succeeded.
    pub ok: bool,
    /// Output payload size, KiB.
    pub output_kb: u64,
    /// Virtual time the response left the platform.
    pub completed_at: Nanos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_construction() {
        let r = Request::new(7, "alice", 200);
        assert_eq!(r.id, 7);
        assert_eq!(r.principal, "alice");
        assert_eq!(r.input_kb, 200);
    }
}
