//! Criterion bench: full platform end-to-end invocations (container +
//! proxy + strategy pipeline) for a representative function per runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gh_faas::{Container, Request};
use gh_functions::catalog::by_name;
use gh_isolation::StrategyKind;
use groundhog_core::GroundhogConfig;

fn bench_e2e(c: &mut Criterion) {
    for (name, kinds) in [
        (
            "trisolv (c)",
            &[StrategyKind::Base, StrategyKind::Gh, StrategyKind::Fork][..],
        ),
        ("md2html (p)", &[StrategyKind::Base, StrategyKind::Gh][..]),
        ("get-time (n)", &[StrategyKind::Base, StrategyKind::Gh][..]),
    ] {
        let spec = by_name(name).unwrap();
        let mut group = c.benchmark_group(format!("e2e {name}"));
        group.sample_size(10);
        for &kind in kinds {
            let mut container =
                Container::cold_start(&spec, kind, GroundhogConfig::gh(), 99).unwrap();
            let mut req = 0u64;
            group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, _| {
                b.iter(|| {
                    req += 1;
                    black_box(
                        container
                            .invoke(&Request::new(req, "bench", spec.input_kb))
                            .unwrap(),
                    )
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
