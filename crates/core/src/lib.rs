//! Groundhog's primary contribution: a language- and runtime-independent,
//! in-memory, lightweight process snapshot/restore mechanism for
//! sequential request isolation in FaaS (Alzayat et al., EuroSys 2023).
//!
//! The design goals of §4 map onto the modules here:
//!
//! - **Generality** — everything operates on a generic multi-threaded
//!   process through ptrace + `/proc` ([`snapshot`], [`restore`]); no
//!   assumption about the function inside.
//! - **Restore cost proportional to modified pages** — soft-dirty-bit
//!   tracking ([`track::SoftDirtyTracker`]), with a userfaultfd
//!   alternative ([`track::UffdTracker`]) kept for the §4.3 comparison.
//! - **Restore off the critical path** — the [`manager::Manager`] restores
//!   *between* activations and buffers incoming requests until the process
//!   is provably clean, never using copy-on-write during execution.
//!
//! # The restore pipeline
//!
//! The §4.4 restore sequence is a two-stage engine — a pure **planner**
//! that compiles the collected state into typed passes, and an
//! **executor** that runs them under the virtual-clock cost model:
//!
//! ```text
//!   attach → interrupt → read maps → scan pagemap → diff layouts
//!      │                                                │
//!      │      DirtyReport + Snapshot + LayoutDiff       ▼
//!      └────────────────▶ RestorePlanner::build ─▶ RestorePlan
//!                                                      │ typed passes
//!        ┌─────────────────────────────────────────────┘
//!        ▼
//!   LayoutFixup ─▶ Madvise ─▶ StackZero ─▶ PageWriteback ─▶ TrackerRearm ─▶ RegsReset
//!   (batched        (evict      (zero        (coalesced runs,   (clear_refs)   (SETREGS)
//!    syscall         newly       fresh        N parallel copy
//!    injection)      paged)      stack)       lanes)
//!        │
//!        └─▶ detach ─▶ [`RestoreReport`] + Fig. 8 [`Breakdown`]
//! ```
//!
//! Every pass is timed phase-by-phase ([`breakdown::RestorePhase`]) so the
//! Fig. 8 decomposition can be regenerated. With
//! [`GroundhogConfig::restore_lanes`]` = 1` the executor is bit-for-bit
//! identical to the paper's serial loop; more lanes parallelize only the
//! page-writeback pass (the ptrace-serialized passes stay serial).
//!
//! # Lazy (on-demand) restoration
//!
//! With [`RestoreMode::Lazy`] the planner swaps the `PageWriteback` pass
//! for `DeferArm`: the restore set is registered with the fault handler
//! (write-protected/unmapped against the snapshot image) instead of
//! being copied, and each page is installed from the snapshot by a
//! single first-touch fault during the *next* request
//! (`gh_mem`'s lazy fault path, charged per
//! [`CostModel::lazy_fault`](gh_sim::CostModel::lazy_fault)). The
//! critical-path restore shrinks to a per-run registration walk at
//! every write-set density; untouched pages keep their obligation
//! across epochs, and the optional background drain
//! ([`RestoreMode::Lazy`]`{ drain: true }`) writes them back during
//! idle gaps, off every request's path. Isolation is preserved — every
//! access of a pending page is intercepted — and a differential oracle
//! (`tests/lazy_oracle.rs`) pins observation equivalence, post-drain
//! bit-exactness, and page-work conservation against the eager engine.
//!
//! # The pool-shared snapshot store
//!
//! A fleet pool holds one near-identical clean-state snapshot per
//! container. [`SnapshotMode::Shared`]
//! interns those pages into a pool-level
//! [`SnapshotStore`](gh_mem::SnapshotStore): the first container's pages
//! become a refcounted base image, subsequent containers dedup against it
//! page-by-page by logical content, and pool memory scales with
//! `base + Σ per-container deltas` instead of `pool_size × snapshot`
//! (§5.5 taken fleet-wide). Deduplication is a *space* optimization only:
//! the shared snapshot charges exactly the eager snapshot's virtual time,
//! so pool timelines are unchanged.

pub mod breakdown;
pub mod config;
pub mod diff;
pub mod error;
pub mod manager;
pub mod plan;
pub mod restore;
pub mod snapshot;
pub mod track;

pub use breakdown::{Breakdown, RestorePhase};
pub use config::{GroundhogConfig, RestoreMode, TrackerKind};
pub use diff::LayoutDiff;
pub use error::GhError;
pub use manager::{Manager, ManagerState, ManagerStats};
pub use plan::{RestorePass, RestorePlan, RestorePlanner, SyscallBatch, WritebackLane};
pub use restore::{RestoreReport, Restorer};
pub use snapshot::{Snapshot, SnapshotMode, SnapshotReport, Snapshotter};
pub use track::{DirtyReport, MemoryTracker, SoftDirtyTracker, UffdTracker};
