//! Predictive pre-warmer: EWMA arrival-rate tracking plus the trace's
//! diurnal phase, driving pre-restore hints ahead of load.
//!
//! The reactive autoscaler (PR 4) grows a pool only after queue depth
//! has already built — every scale-up eats one cold start's worth of
//! queueing before the new container helps. The pre-warmer instead
//! projects the arrival rate a `horizon` ahead (chosen ≥ the container
//! init time) and asks for capacity *now* so the slot is warm when the
//! burst lands.
//!
//! The projection has two factors:
//!
//! 1. **EWMA inter-arrival gap** — [`Prewarmer::observe`] folds each
//!    gap into an exponentially weighted mean; its reciprocal is the
//!    current arrival rate. With fewer than two arrivals there is no
//!    gap and therefore no estimate: a cold history never pre-warms
//!    (pinned by a unit test).
//! 2. **Diurnal phase ratio** — when the workload declares a diurnal
//!    envelope (the same `1 + A·sin(2π(t−origin)/period)` the trace
//!    generator thins against), the projected rate is scaled by
//!    `envelope(t + horizon) / envelope(t)`, anticipating the upswing
//!    instead of trailing it.
//!
//! Capacity wanted is then `ceil(rate × service_time / target_util)`,
//! clamped to the container-memory budget `max_size`, with a cooldown
//! between grow hints so one burst does not stampede the pool. All
//! arithmetic is over virtual time and per-arrival state — replaying
//! the same arrival timeline reproduces the same hint sequence exactly.

use gh_sim::Nanos;

/// Pre-warmer knobs.
#[derive(Clone, Copy, Debug)]
pub struct PrewarmConfig {
    /// EWMA weight of the newest inter-arrival gap (0 < alpha ≤ 1).
    pub alpha: f64,
    /// How far ahead to project the rate; at least the container init
    /// time, or the warm slot arrives after the burst it was for.
    pub horizon: Nanos,
    /// Capacity planning target: wanted = ceil(rate·service/target).
    pub target_util: f64,
    /// Container-memory budget — never hint beyond this pool size.
    pub max_size: usize,
    /// Minimum virtual time between grow hints.
    pub cooldown: Nanos,
    /// Diurnal envelope amplitude `A` (0 disables phase scaling).
    pub diurnal_amplitude: f64,
    /// Diurnal envelope period; ignored when the amplitude is 0.
    pub diurnal_period: Nanos,
}

impl PrewarmConfig {
    /// A flat-workload config: no diurnal scaling, α=0.2, 70% target.
    pub fn flat(horizon: Nanos, max_size: usize) -> PrewarmConfig {
        PrewarmConfig {
            alpha: 0.2,
            horizon,
            target_util: 0.7,
            max_size,
            cooldown: horizon,
            diurnal_amplitude: 0.0,
            diurnal_period: Nanos::from_secs(1),
        }
    }
}

/// Arrival-history state for one function's pool.
pub struct Prewarmer {
    cfg: PrewarmConfig,
    /// Diurnal phase origin (the trace's `origin`).
    origin: Nanos,
    ewma_gap_secs: Option<f64>,
    last_arrival: Option<Nanos>,
    last_grow: Option<Nanos>,
    /// Grow hints issued.
    pub spawned: u64,
}

impl Prewarmer {
    /// Fresh history under `cfg`; `origin` anchors the diurnal phase.
    pub fn new(cfg: PrewarmConfig, origin: Nanos) -> Prewarmer {
        Prewarmer {
            cfg,
            origin,
            ewma_gap_secs: None,
            last_arrival: None,
            last_grow: None,
            spawned: 0,
        }
    }

    /// The configuration this pre-warmer runs under.
    pub fn config(&self) -> &PrewarmConfig {
        &self.cfg
    }

    /// Folds an arrival at virtual time `now` into the EWMA gap.
    pub fn observe(&mut self, now: Nanos) {
        if let Some(last) = self.last_arrival {
            let gap = now.checked_sub(last).unwrap_or(Nanos::ZERO).as_secs_f64();
            self.ewma_gap_secs = Some(match self.ewma_gap_secs {
                Some(ewma) => self.cfg.alpha * gap + (1.0 - self.cfg.alpha) * ewma,
                None => gap,
            });
        }
        self.last_arrival = Some(now);
    }

    fn envelope(&self, t: Nanos) -> f64 {
        let a = self.cfg.diurnal_amplitude;
        if a == 0.0 {
            return 1.0;
        }
        let period = self.cfg.diurnal_period.as_secs_f64().max(f64::MIN_POSITIVE);
        let phase = (t.as_secs_f64() - self.origin.as_secs_f64()) / period;
        (1.0 + a * (std::f64::consts::TAU * phase).sin()).max(0.0)
    }

    /// The arrival rate projected `horizon` ahead of `now`, or `None`
    /// while the history is cold (fewer than two arrivals observed).
    pub fn predicted_rps(&self, now: Nanos) -> Option<f64> {
        let gap = self.ewma_gap_secs?;
        let current = 1.0 / gap.max(1e-9);
        let now_env = self.envelope(now).max(1e-6);
        Some(current * self.envelope(now + self.cfg.horizon) / now_env)
    }

    /// Containers wanted at `now + horizon` for a mean service time of
    /// `service_secs`, clamped to the memory budget. `None` while cold.
    pub fn desired_capacity(&self, now: Nanos, service_secs: f64) -> Option<usize> {
        let rps = self.predicted_rps(now)?;
        let wanted = (rps * service_secs / self.cfg.target_util.max(1e-6)).ceil();
        Some((wanted as usize).min(self.cfg.max_size))
    }

    /// Should the pool grow by one container right now? True when the
    /// projected demand exceeds `active` capacity, the budget allows
    /// it, and the cooldown has elapsed; issuing the hint arms the
    /// cooldown and bumps [`Prewarmer::spawned`].
    pub fn want_grow(&mut self, now: Nanos, active: usize, service_secs: f64) -> bool {
        if active >= self.cfg.max_size {
            return false;
        }
        if let Some(last) = self.last_grow {
            if now.checked_sub(last).unwrap_or(Nanos::ZERO) < self.cfg.cooldown {
                return false;
            }
        }
        let Some(desired) = self.desired_capacity(now, service_secs) else {
            return false;
        };
        if desired <= active {
            return false;
        }
        self.last_grow = Some(now);
        self.spawned += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warm_cfg() -> PrewarmConfig {
        PrewarmConfig::flat(Nanos::from_millis(500), 8)
    }

    #[test]
    fn cold_history_never_prewarms() {
        let mut p = Prewarmer::new(warm_cfg(), Nanos::ZERO);
        assert_eq!(p.predicted_rps(Nanos::from_secs(1)), None);
        assert!(
            !p.want_grow(Nanos::from_secs(1), 1, 0.1),
            "no arrivals → no pre-warm"
        );
        // One arrival gives no gap either: still cold.
        p.observe(Nanos::from_secs(1));
        assert_eq!(p.predicted_rps(Nanos::from_secs(2)), None);
        assert!(!p.want_grow(Nanos::from_secs(2), 1, 0.1));
        assert_eq!(p.spawned, 0);
    }

    #[test]
    fn steady_arrivals_estimate_the_rate() {
        let mut p = Prewarmer::new(warm_cfg(), Nanos::ZERO);
        // 10ms gaps → 100 rps.
        for i in 0..50u64 {
            p.observe(Nanos::from_millis(10 * i));
        }
        let rps = p.predicted_rps(Nanos::from_millis(500)).unwrap();
        assert!((rps - 100.0).abs() < 1.0, "got {rps}");
        // 100 rps × 100ms service / 0.7 target → 15 containers wanted.
        assert_eq!(p.desired_capacity(Nanos::from_millis(500), 0.1), Some(8));
        assert!(p.want_grow(Nanos::from_millis(500), 4, 0.1));
        assert_eq!(p.spawned, 1);
    }

    #[test]
    fn cooldown_spaces_grow_hints() {
        let mut p = Prewarmer::new(warm_cfg(), Nanos::ZERO);
        for i in 0..50u64 {
            p.observe(Nanos::from_millis(10 * i));
        }
        let t = Nanos::from_millis(500);
        assert!(p.want_grow(t, 1, 0.1));
        assert!(!p.want_grow(t + Nanos::from_millis(100), 2, 0.1), "cooling");
        assert!(p.want_grow(t + Nanos::from_millis(500), 2, 0.1));
        assert_eq!(p.spawned, 2);
    }

    #[test]
    fn budget_caps_growth() {
        let mut p = Prewarmer::new(PrewarmConfig::flat(Nanos::from_millis(500), 2), Nanos::ZERO);
        for i in 0..50u64 {
            p.observe(Nanos::from_millis(10 * i));
        }
        assert!(!p.want_grow(Nanos::from_millis(500), 2, 0.1), "at budget");
    }

    #[test]
    fn diurnal_phase_scales_the_projection() {
        let cfg = PrewarmConfig {
            diurnal_amplitude: 0.5,
            diurnal_period: Nanos::from_secs(40),
            horizon: Nanos::from_secs(10),
            ..warm_cfg()
        };
        let mut p = Prewarmer::new(cfg, Nanos::ZERO);
        for i in 0..50u64 {
            p.observe(Nanos::from_millis(10 * i));
        }
        // At t=0 the envelope is 1.0; at t+10s (quarter period) it
        // peaks at 1.5 → the projection anticipates a 1.5× upswing.
        let flat = 100.0;
        let rps = p.predicted_rps(Nanos::from_millis(490)).unwrap();
        assert!(rps > flat * 1.3, "projection rides the upswing: {rps}");
    }
}
