//! The §5.2 microbenchmark.
//!
//! "We implement a simple function in C that pre-allocates an address
//! space of a fixed size. Each invocation (a) dirties a subset of the
//! pages by writing a word to each page of that subset, then (b) reads
//! one word from each mapped page, even those that were not dirtied."

use gh_mem::{PageRange, Perms, RequestId, Taint, Touch, TouchBatch, VmaKind, Vpn};
use gh_proc::{Kernel, Pid};
use gh_sim::Nanos;

/// Per-page work of the benchmark's own loops (beyond fault costs):
/// a strided word write/read over a multi-hundred-MB region is dTLB-walk
/// bound at roughly these rates.
const WORK_PER_WRITE: Nanos = Nanos::from_nanos(25);
const WORK_PER_READ: Nanos = Nanos::from_nanos(18);

/// The pre-allocated microbenchmark function.
pub struct MicroFunction {
    /// The function process.
    pub pid: Pid,
    /// The pre-allocated region.
    pub region: PageRange,
    /// The full-region read sweep, invariant for the function's
    /// lifetime — built once, replayed every invocation.
    read_batch: TouchBatch,
}

/// Timing summary of one microbenchmark invocation.
#[derive(Clone, Copy, Debug)]
pub struct MicroReport {
    /// In-function duration.
    pub duration: Nanos,
    /// Pages written.
    pub dirtied: u64,
}

impl MicroFunction {
    /// Builds the function with `mapped_pages` pre-allocated pages and
    /// pages everything in (the dummy invocation of §4.1 would do this).
    pub fn build(kernel: &mut Kernel, mapped_pages: u64) -> MicroFunction {
        let pid = kernel.spawn("microbench (c)");
        let region = kernel
            .run_charged(pid, |p, frames| {
                let r = p
                    .mem
                    .mmap(mapped_pages, Perms::RW, VmaKind::Anon)
                    .expect("fits");
                let mut batch = TouchBatch::with_capacity(r.len() as usize);
                for vpn in r.iter() {
                    batch.push(vpn, Touch::Read, Taint::Clean);
                }
                let d = p.mem.touch_batch(&batch, frames);
                assert_eq!(d.failed, 0, "page-in touched all");
                (r, batch)
            })
            .expect("build")
            .0;
        let (region, read_batch) = region;
        MicroFunction {
            pid,
            region,
            read_batch,
        }
    }

    /// One invocation: write a word to each page of an evenly spread
    /// subset covering `dirty_fraction` of the region, then read one word
    /// from every mapped page.
    pub fn invoke(&self, kernel: &mut Kernel, dirty_fraction: f64, req: RequestId) -> MicroReport {
        self.invoke_on(kernel, self.pid, dirty_fraction, req)
    }

    /// Like [`MicroFunction::invoke`], but executed inside `pid` — the
    /// fork-isolation path runs the invocation in a CoW child whose
    /// layout mirrors this function's, borrowing the cached read sweep
    /// instead of cloning a per-invocation view.
    pub fn invoke_on(
        &self,
        kernel: &mut Kernel,
        pid: Pid,
        dirty_fraction: f64,
        req: RequestId,
    ) -> MicroReport {
        let t0 = kernel.clock.now();
        let total = self.region.len();
        let dirty = ((total as f64) * dirty_fraction.clamp(0.0, 1.0)).round() as u64;
        let region = self.region;
        // Both the evenly spread write subset and the full read sweep
        // are ascending — batched through the cursor-walk fault path
        // (bit-identical counters to the per-page loops). The write
        // batch carries per-request taint and values so it is rebuilt
        // per invocation; the read sweep replays the cached batch.
        let mut batch = TouchBatch::with_capacity(dirty as usize);
        if dirty > 0 {
            // Evenly spread subset (deterministic; density drives
            // the run structure the restorer sees).
            for i in 0..dirty {
                let off = (i as u128 * total as u128 / dirty as u128) as u64;
                let vpn = Vpn(region.start.0 + off);
                batch.push(vpn, Touch::WriteWord(0xD17 ^ i), Taint::One(req));
            }
        }
        let reads = &self.read_batch;
        kernel
            .run_charged(pid, |p, frames| {
                let d = p.mem.touch_batch(&batch, frames);
                assert_eq!(d.failed, 0, "every write landed");
                let d = p.mem.touch_batch(reads, frames);
                assert_eq!(d.failed, 0, "every read landed");
            })
            .expect("invoke");
        kernel.charge(WORK_PER_WRITE * dirty + WORK_PER_READ * total);
        MicroReport {
            duration: kernel.clock.now() - t0,
            dirtied: dirty,
        }
    }

    /// Number of pages the next invocation would dirty for a fraction.
    pub fn dirty_count(&self, fraction: f64) -> u64 {
        ((self.region.len() as f64) * fraction.clamp(0.0, 1.0)).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_pages_everything_in() {
        let mut k = Kernel::boot();
        let m = MicroFunction::build(&mut k, 512);
        let proc = k.process(m.pid).unwrap();
        assert_eq!(proc.mem.present_pages(), 512);
        assert_eq!(m.region.len(), 512);
    }

    #[test]
    fn invocation_dirties_the_requested_fraction() {
        let mut k = Kernel::boot();
        let m = MicroFunction::build(&mut k, 1000);
        // Clear tracking so the dirty set is exactly this invocation's.
        k.process_mut(m.pid).unwrap().mem.clear_soft_dirty();
        let r = m.invoke(&mut k, 0.25, RequestId(1));
        assert_eq!(r.dirtied, 250);
        let dirty = k.process(m.pid).unwrap().mem.soft_dirty_pages().len();
        assert_eq!(dirty, 250);
    }

    #[test]
    fn zero_and_full_fractions() {
        let mut k = Kernel::boot();
        let m = MicroFunction::build(&mut k, 100);
        k.process_mut(m.pid).unwrap().mem.clear_soft_dirty();
        let r0 = m.invoke(&mut k, 0.0, RequestId(1));
        assert_eq!(r0.dirtied, 0);
        assert!(k.process(m.pid).unwrap().mem.soft_dirty_pages().is_empty());
        let r1 = m.invoke(&mut k, 1.0, RequestId(2));
        assert_eq!(r1.dirtied, 100);
        assert_eq!(m.dirty_count(1.5), 100, "fraction clamps");
    }

    #[test]
    fn duration_grows_with_dirty_fraction_under_tracking() {
        let mut k = Kernel::boot();
        let m = MicroFunction::build(&mut k, 4096);
        k.process_mut(m.pid).unwrap().mem.clear_soft_dirty();
        let low = m.invoke(&mut k, 0.1, RequestId(1));
        k.process_mut(m.pid).unwrap().mem.clear_soft_dirty();
        let high = m.invoke(&mut k, 0.9, RequestId(2));
        assert!(
            high.duration > low.duration,
            "SD faults scale with dirtied pages: {} vs {}",
            high.duration,
            low.duration
        );
    }
}
