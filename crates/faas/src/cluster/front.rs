//! Coordinator-pure gateway front-end for the cluster path.
//!
//! The fleet gateway ([`crate::gateway`]) interleaves cache fills and
//! admission releases with backend completions on one event queue. A
//! cluster cannot: node timelines must stay pure functions of the trace
//! prefix or host-parallel execution stops being bit-identical to
//! serial (see [`crate::cluster`]). [`GatewayFront`] is the restriction
//! of the gateway to decisions computable from the trace alone:
//!
//! - **Result cache** with *arrival-reservation* semantics: the first
//!   idempotent arrival for a `(function, payload)` key reserves a
//!   cache entry visible from its own arrival time and goes to the
//!   backend; later arrivals inside the TTL window are hits, served at
//!   the front at the configured hit cost. Reserving at arrival rather
//!   than at fill time makes the cache a pure function of the trace —
//!   the price is a small optimistic bias (a hit may be served before
//!   the filling request's backend response in real time), which is the
//!   standard request-coalescing idealization. Redeploy invalidation
//!   ([`gh_gateway::cache::ResultCache::redeploy`]) folds in the same
//!   way: a redeploy schedule is a pure function of time, so
//!   [`GatewayFront::with_redeploys`] replays it against the trace
//!   clock — each due `(instant, fn)` entry bumps the function's
//!   generation and drops its cached entries — and every node observes
//!   the identical invalidation sequence. [`GatewayFront::new`] is the
//!   empty-schedule special case (generation pinned to 0, bit-for-bit
//!   the old behavior).
//! - **Per-principal token buckets** exactly as in the fleet gateway.
//!   The global concurrency ceiling ([`AdmissionConfig::max_in_flight`])
//!   is **ignored**: deferral needs completion knowledge the
//!   coordinator does not have. [`GatewayFront::new`] strips it.
//! - **No pre-warmer**: cluster pools are fixed-size per (node,
//!   function); pre-warming is a fleet-level policy.
//!
//! Every node replays the front over the *full* trace (the same way it
//! replays the [`super::Placer`]) and keeps the backend-bound arrivals
//! placed on it; the coordinator runs one extra pure pass to collect
//! front-side stats. Both observe the identical decision sequence, so
//! no front state ever crosses a thread boundary.

use gh_gateway::admission::{AdmissionConfig, TokenBucket};
use gh_gateway::cache::{CacheKey, ResultCache};
use gh_gateway::GatewayConfig;
use gh_sim::Nanos;
use std::collections::HashMap;

use crate::trace::TraceEvent;

/// What the front decided for one trace event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrontDecision {
    /// Forward to placement and a node's pool.
    Backend,
    /// Served from the result cache at the front.
    Hit,
    /// Dropped by the principal's token bucket.
    Reject,
}

/// Deterministic gateway front: a pure fold over the trace stream.
///
/// Feed it every [`TraceEvent`] in order via [`GatewayFront::decide`];
/// two fronts built from the same [`GatewayConfig`] and fed the same
/// stream traverse identical states.
pub struct GatewayFront {
    cache: Option<ResultCache>,
    admission: Option<AdmissionCfgBuckets>,
    /// Time-ordered `(instant, fn)` redeploy schedule being folded in.
    redeploys: Vec<(Nanos, u32)>,
    /// Next unapplied schedule entry.
    next_redeploy: usize,
    /// Current code generation per function (0 until redeployed).
    generation: HashMap<u64, u64>,
    /// Arrivals served from the cache.
    pub hits: u64,
    /// Arrivals dropped by rate limiting.
    pub rejected: u64,
    /// High-water mark of cached bytes.
    pub cache_peak_bytes: u64,
}

/// Rate-limit half of [`gh_gateway::admission::AdmissionControl`]: the
/// buckets without the in-flight ceiling.
struct AdmissionCfgBuckets {
    cfg: AdmissionConfig,
    buckets: HashMap<u64, TokenBucket>,
}

impl GatewayFront {
    /// Builds the front. The in-flight ceiling, if configured, is
    /// dropped (see the module docs); the pre-warmer is ignored.
    pub fn new(cfg: &GatewayConfig) -> GatewayFront {
        GatewayFront::with_redeploys(cfg, &[])
    }

    /// Builds the front with a redeploy schedule folded into the cache:
    /// when the trace clock passes an entry, that function's generation
    /// bumps and its cached results drop (old-generation keys miss even
    /// inside their TTL). The schedule must be time-ordered; being a
    /// pure function of the trace clock, every node replays it
    /// identically, so coordinator purity is preserved.
    pub fn with_redeploys(cfg: &GatewayConfig, schedule: &[(Nanos, u32)]) -> GatewayFront {
        debug_assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "redeploy schedule must be time-ordered"
        );
        GatewayFront {
            cache: cfg.cache.map(ResultCache::new),
            admission: cfg.admission.map(|a| AdmissionCfgBuckets {
                cfg: AdmissionConfig {
                    max_in_flight: None,
                    ..a
                },
                buckets: HashMap::new(),
            }),
            redeploys: schedule.to_vec(),
            next_redeploy: 0,
            generation: HashMap::new(),
            hits: 0,
            rejected: 0,
            cache_peak_bytes: 0,
        }
    }

    /// Folds one trace event through cache + rate limit. Must be called
    /// for every event, in trace order. `output_kb` is the function's
    /// response size (used for cache byte accounting when the event
    /// reserves an entry).
    pub fn decide(&mut self, ev: &TraceEvent, output_kb: u64) -> FrontDecision {
        // Apply redeploys that are due by this event's arrival: bump
        // the function's generation and drop its cached entries.
        while let Some(&(at, f)) = self.redeploys.get(self.next_redeploy) {
            if at > ev.at {
                break;
            }
            self.next_redeploy += 1;
            *self.generation.entry(f as u64).or_insert(0) += 1;
            if let Some(cache) = &mut self.cache {
                cache.redeploy(f as u64);
            }
        }
        if let Some(cache) = &mut self.cache {
            cache.expire_due(ev.at);
            if ev.idempotent {
                let key = CacheKey {
                    fn_id: ev.fn_id as u64,
                    generation: self
                        .generation
                        .get(&(ev.fn_id as u64))
                        .copied()
                        .unwrap_or(0),
                    payload_hash: ev.payload_hash,
                };
                if cache.lookup(key, ev.at).is_some() {
                    self.hits += 1;
                    return FrontDecision::Hit;
                }
                // Miss: this event goes to the backend and reserves the
                // entry from its own arrival time.
                cache.insert(key, output_kb, ev.at);
                self.cache_peak_bytes = self.cache_peak_bytes.max(cache.bytes());
            }
        }
        if let Some(adm) = &mut self.admission {
            let bucket = adm
                .buckets
                .entry(ev.principal as u64)
                .or_insert_with(|| TokenBucket::full(adm.cfg.burst, ev.at));
            if !bucket.try_take(ev.at, adm.cfg.rate_per_sec, adm.cfg.burst) {
                self.rejected += 1;
                return FrontDecision::Reject;
            }
        }
        FrontDecision::Backend
    }

    /// The latency a cache hit is charged at the front.
    pub fn hit_cost(&self) -> Nanos {
        self.cache
            .as_ref()
            .map_or(Nanos::ZERO, |c| c.config().hit_cost)
    }

    /// Cache counters (zeroed stats when the cache is disabled).
    pub fn cache_stats(&self) -> gh_gateway::cache::CacheStats {
        self.cache.as_ref().map(|c| c.stats).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_gateway::cache::CacheConfig;

    fn ev(seq: u64, at: Nanos, fn_id: u32, principal: u32, payload: u64, idem: bool) -> TraceEvent {
        TraceEvent {
            seq,
            at,
            fn_id,
            principal,
            payload_hash: payload,
            idempotent: idem,
        }
    }

    #[test]
    fn disabled_front_passes_everything() {
        let mut f = GatewayFront::new(&GatewayConfig::disabled());
        for i in 0..50 {
            let e = ev(i, Nanos::from_millis(i), 0, 0, 7, true);
            assert_eq!(f.decide(&e, 1), FrontDecision::Backend);
        }
        assert_eq!(f.hits, 0);
        assert_eq!(f.rejected, 0);
    }

    #[test]
    fn reservation_turns_repeats_into_hits() {
        let cfg = GatewayConfig::builder()
            .cache(CacheConfig::default_for_ttl(Nanos::from_secs(10)))
            .build();
        let mut f = GatewayFront::new(&cfg);
        let first = ev(0, Nanos::from_secs(1), 3, 0, 42, true);
        assert_eq!(f.decide(&first, 4), FrontDecision::Backend);
        let again = ev(1, Nanos::from_secs(2), 3, 1, 42, true);
        assert_eq!(f.decide(&again, 4), FrontDecision::Hit);
        // Past the TTL the reservation is gone; the next arrival
        // re-reserves.
        let late = ev(2, Nanos::from_secs(20), 3, 0, 42, true);
        assert_eq!(f.decide(&late, 4), FrontDecision::Backend);
        assert_eq!(f.hits, 1);
    }

    #[test]
    fn non_idempotent_never_cached() {
        let cfg = GatewayConfig::builder()
            .cache(CacheConfig::default_for_ttl(Nanos::from_secs(10)))
            .build();
        let mut f = GatewayFront::new(&cfg);
        for i in 0..4 {
            let e = ev(i, Nanos::from_secs(i), 1, 0, 9, false);
            assert_eq!(f.decide(&e, 4), FrontDecision::Backend);
        }
        assert_eq!(f.hits, 0);
    }

    #[test]
    fn redeploys_invalidate_inside_the_ttl_and_fold_purely() {
        let cfg = GatewayConfig::builder()
            .cache(CacheConfig::default_for_ttl(Nanos::from_secs(60)))
            .build();
        let schedule = [(Nanos::from_secs(5), 3u32)];
        let mut f = GatewayFront::with_redeploys(&cfg, &schedule);
        let first = ev(0, Nanos::from_secs(1), 3, 0, 42, true);
        assert_eq!(f.decide(&first, 4), FrontDecision::Backend);
        let warm = ev(1, Nanos::from_secs(2), 3, 0, 42, true);
        assert_eq!(f.decide(&warm, 4), FrontDecision::Hit);
        // Past the redeploy instant the generation has bumped: the same
        // key misses well inside its TTL and re-reserves.
        let stale = ev(2, Nanos::from_secs(6), 3, 0, 42, true);
        assert_eq!(f.decide(&stale, 4), FrontDecision::Backend);
        let refill = ev(3, Nanos::from_secs(7), 3, 0, 42, true);
        assert_eq!(f.decide(&refill, 4), FrontDecision::Hit);
        // A function not in the schedule is untouched.
        let other = ev(4, Nanos::from_secs(8), 1, 0, 9, true);
        assert_eq!(f.decide(&other, 4), FrontDecision::Backend);
        assert_eq!(f.decide(&ev(5, Nanos::from_secs(9), 1, 0, 9, true), 4), {
            FrontDecision::Hit
        });
        assert!(f.cache_stats().invalidated > 0);
        // The fold is pure: replaying the same stream traverses the
        // identical decision sequence.
        let mut g = GatewayFront::with_redeploys(&cfg, &schedule);
        for (i, e) in [first, warm, stale, refill, other].iter().enumerate() {
            let want = match i {
                1 | 3 => FrontDecision::Hit,
                _ => FrontDecision::Backend,
            };
            assert_eq!(g.decide(e, 4), want);
        }
    }

    #[test]
    fn rate_limit_rejects_and_ceiling_is_stripped() {
        let cfg = GatewayConfig::builder()
            .admission(AdmissionConfig {
                rate_per_sec: 1.0,
                burst: 2,
                max_in_flight: Some(1),
            })
            .build();
        let mut f = GatewayFront::new(&cfg);
        let t = Nanos::from_secs(5);
        // Burst of two passes; the ceiling (which would defer the
        // second) is ignored at the front.
        assert_eq!(
            f.decide(&ev(0, t, 0, 0, 1, false), 1),
            FrontDecision::Backend
        );
        assert_eq!(
            f.decide(&ev(1, t, 0, 0, 2, false), 1),
            FrontDecision::Backend
        );
        assert_eq!(
            f.decide(&ev(2, t, 0, 0, 3, false), 1),
            FrontDecision::Reject
        );
        // A different principal has its own bucket.
        assert_eq!(
            f.decide(&ev(3, t, 0, 1, 4, false), 1),
            FrontDecision::Backend
        );
        assert_eq!(f.rejected, 1);
    }
}
