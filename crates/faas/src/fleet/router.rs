//! The router: assigns each arriving request to one container.
//!
//! The policy is the knob the paper's fleet-level claim turns on: a
//! restore-*unaware* router cannot tell a clean idle container from one
//! still restoring (the restore is off the critical path and invisible
//! in response traffic), so near saturation it parks requests behind
//! restores while clean capacity idles. [`RoutePolicy::RestoreAware`]
//! consumes the readiness events the containers expose
//! ([`Slot::ready_at`], [`Container::is_ready`]) and routes around
//! in-progress restores.
//!
//! [`Container::is_ready`]: crate::container::Container::is_ready

use gh_sim::Nanos;

use super::pool::Slot;

/// Pluggable request-routing policies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RoutePolicy {
    /// Cycle through containers regardless of state.
    RoundRobin,
    /// Pick the container with the fewest visible requests (queued + in
    /// flight). Restore-unaware: a restoring container looks idle.
    LeastLoaded,
    /// Groundhog-specific: among the least-loaded containers, prefer one
    /// that is provably clean *now*, else the one whose restore
    /// completes earliest — restores hide across the pool even near
    /// saturation. In §4.4's deferred-restore mode it additionally
    /// prefers containers whose last request came from the same
    /// principal, keeping rollbacks off the critical path entirely.
    RestoreAware,
}

impl RoutePolicy {
    /// Paper-style label for tables and CSV.
    pub fn label(self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "round-robin",
            RoutePolicy::LeastLoaded => "least-loaded",
            RoutePolicy::RestoreAware => "restore-aware",
        }
    }

    /// All policies, in ascending order of information used.
    pub const ALL: [RoutePolicy; 3] = [
        RoutePolicy::RoundRobin,
        RoutePolicy::LeastLoaded,
        RoutePolicy::RestoreAware,
    ];
}

/// Routing state (the round-robin cursor survives across requests).
#[derive(Clone, Debug)]
pub struct Router {
    policy: RoutePolicy,
    cursor: usize,
}

impl Router {
    /// Creates a router with the given policy.
    pub fn new(policy: RoutePolicy) -> Router {
        Router { policy, cursor: 0 }
    }

    /// The policy in effect.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }

    /// Picks the slot index for a request from `principal` arriving at
    /// `now`. `restore_cost` is the expected critical-path rollback a
    /// restore-aware router charges to slots that cannot admit this
    /// principal without restoring first (§4.4's deferred-restore mode;
    /// zero-cost for strategies that restore eagerly off-path).
    ///
    /// # Panics
    ///
    /// Panics if every slot is retired.
    pub fn route(
        &mut self,
        now: Nanos,
        principal: &str,
        restore_cost: Nanos,
        slots: &[Slot],
    ) -> usize {
        self.route_avoiding(now, principal, restore_cost, slots, None)
    }

    /// [`Router::route`], excluding `avoid` from the candidates — the
    /// fault layer's retry-on-other-container policy re-routes a killed
    /// request away from the container that just died. When `avoid` is
    /// the only active slot it is used anyway (a pool of one has
    /// nowhere else to go).
    pub fn route_avoiding(
        &mut self,
        now: Nanos,
        principal: &str,
        restore_cost: Nanos,
        slots: &[Slot],
        avoid: Option<usize>,
    ) -> usize {
        let mut candidates: Vec<usize> = (0..slots.len()).filter(|&i| !slots[i].retired).collect();
        if let Some(a) = avoid {
            if candidates.len() > 1 {
                candidates.retain(|&i| i != a);
            }
        }
        assert!(!candidates.is_empty(), "routing with no active containers");
        match self.policy {
            RoutePolicy::RoundRobin => {
                let pick = candidates[self.cursor % candidates.len()];
                self.cursor = self.cursor.wrapping_add(1);
                pick
            }
            RoutePolicy::LeastLoaded => candidates
                .into_iter()
                .min_by_key(|&i| slots[i].visible_load(now))
                .expect("non-empty"),
            RoutePolicy::RestoreAware => candidates
                .into_iter()
                // Lexicographic: fewest waiting requests first, then the
                // lowest predicted delay — the wait until the slot is
                // provably clean (a clean idle slot waits zero, beating
                // any restoring slot) plus the critical-path rollback
                // this principal would trigger on that slot.
                .min_by_key(|&i| {
                    let s = &slots[i];
                    let wait = s.ready_at.max(now) - now;
                    let penalty = if s.container.admits_without_restore(principal) {
                        Nanos::ZERO
                    } else {
                        restore_cost
                    };
                    (s.queue.len(), wait + penalty)
                })
                .expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::pool::Pool;
    use crate::fleet::queue::Pending;
    use gh_functions::catalog::by_name;
    use gh_isolation::StrategyKind;
    use groundhog_core::GroundhogConfig;

    fn pool(size: usize) -> Pool {
        let spec = by_name("fannkuch (p)").unwrap();
        Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), size, 7).unwrap()
    }

    /// The time every slot in the pool is warm (the fleet's span start).
    fn warm(p: &Pool) -> Nanos {
        p.slots.iter().map(|s| s.ready_at).max().unwrap()
    }

    fn start_one(p: &mut Pool, idx: usize, at: Nanos) -> (Nanos, Nanos) {
        p.slots[idx].queue.push(Pending {
            id: 1,
            principal: "a".into(),
            input_kb: 1,
            arrival: at,
            payload_hash: 0,
            idempotent: false,
            attempt: 1,
        });
        let d = p.slots[idx].dispatch(at).unwrap().unwrap();
        (d.resp_at, d.ready_at)
    }

    #[test]
    fn round_robin_cycles() {
        let p = pool(3);
        let mut r = Router::new(RoutePolicy::RoundRobin);
        let now = Nanos::ZERO;
        let picks: Vec<usize> = (0..6)
            .map(|_| r.route(now, "a", Nanos::ZERO, &p.slots))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_retired() {
        let mut p = pool(3);
        p.retire(1);
        let mut r = Router::new(RoutePolicy::RoundRobin);
        let picks: Vec<usize> = (0..4)
            .map(|_| r.route(Nanos::ZERO, "a", Nanos::ZERO, &p.slots))
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn least_loaded_is_blind_to_restores() {
        let mut p = pool(2);
        let t0 = warm(&p);
        let (resp, ready) = start_one(&mut p, 0, t0);
        // Mid-restore: slot 0's response is gone, restore still running.
        let mid = resp + (ready - resp) / 2;
        assert_eq!(p.slots[0].visible_load(mid), 0, "restore invisible");
        // Both slots look idle; least-loaded ties break to slot 0 even
        // though it cannot admit until `ready`.
        let mut r = Router::new(RoutePolicy::LeastLoaded);
        assert_eq!(r.route(mid, "a", Nanos::ZERO, &p.slots), 0);
    }

    #[test]
    fn restore_aware_routes_around_restores() {
        let mut p = pool(2);
        let t0 = warm(&p);
        let (resp, ready) = start_one(&mut p, 0, t0);
        let mid = resp + (ready - resp) / 2;
        let mut r = Router::new(RoutePolicy::RestoreAware);
        assert_eq!(
            r.route(mid, "a", Nanos::ZERO, &p.slots),
            1,
            "slot 1 is provably clean now"
        );
        // Once slot 0's restore completes, both are clean; fewest-queued
        // then earliest-ready ties resolve to slot 0.
        assert_eq!(r.route(ready, "a", Nanos::ZERO, &p.slots), 0);
    }

    #[test]
    fn restore_aware_prefers_shortest_wait_when_all_busy() {
        let mut p = pool(2);
        let t0 = warm(&p);
        let (_, ready0) = start_one(&mut p, 0, t0);
        let (_, ready1) = start_one(&mut p, 1, t0 + Nanos::from_micros(50));
        let (first, later) = if ready0 <= ready1 { (0, 1) } else { (1, 0) };
        let ready_first = ready0.min(ready1);
        // Both slots mid-restore: the earlier restore completion wins.
        let now = ready_first - Nanos::from_micros(1);
        assert!(!p.slots[first].idle_at(now) && !p.slots[later].idle_at(now));
        let mut r = Router::new(RoutePolicy::RestoreAware);
        assert_eq!(
            r.route(now, "a", Nanos::ZERO, &p.slots),
            first,
            "earliest restore completion wins"
        );
    }

    #[test]
    fn restore_aware_honours_principal_affinity_in_skip_mode() {
        // Deferred restores (§4.4): after serving alice, a slot admits
        // alice again without any rollback, but admitting bob triggers a
        // critical-path restore. The router must cluster principals.
        let spec = by_name("fannkuch (p)").unwrap();
        let gh = GroundhogConfig {
            skip_same_principal: true,
            ..GroundhogConfig::gh()
        };
        let mut p = Pool::build(&spec, StrategyKind::Gh, gh, 2, 7).unwrap();
        let t0 = warm(&p);
        // Slot 0 serves alice; slot 1 serves bob.
        for (idx, who) in [(0usize, "alice"), (1usize, "bob")] {
            p.slots[idx].queue.push(Pending {
                id: idx as u64 + 1,
                principal: who.into(),
                input_kb: 1,
                arrival: t0,
                payload_hash: 0,
                idempotent: false,
                attempt: 1,
            });
            p.slots[idx].dispatch(t0).unwrap().unwrap();
        }
        let both_done = p.slots.iter().map(|s| s.ready_at).max().unwrap();
        assert!(p.slots[0].container.admits_without_restore("alice"));
        assert!(!p.slots[0].container.admits_without_restore("bob"));
        let cost = Nanos::from_millis(3);
        let mut r = Router::new(RoutePolicy::RestoreAware);
        assert_eq!(r.route(both_done, "alice", cost, &p.slots), 0);
        assert_eq!(r.route(both_done, "bob", cost, &p.slots), 1);
        // A restore-blind round-robin ignores affinity entirely.
        let mut rr = Router::new(RoutePolicy::RoundRobin);
        assert_eq!(rr.route(both_done, "bob", cost, &p.slots), 0);
    }

    #[test]
    fn route_avoiding_skips_the_faulted_slot() {
        let p = pool(3);
        let mut r = Router::new(RoutePolicy::LeastLoaded);
        // Least-loaded on an idle pool picks slot 0; avoiding 0 moves on.
        assert_eq!(r.route(Nanos::ZERO, "a", Nanos::ZERO, &p.slots), 0);
        assert_eq!(
            r.route_avoiding(Nanos::ZERO, "a", Nanos::ZERO, &p.slots, Some(0)),
            1
        );
    }

    #[test]
    fn route_avoiding_falls_back_on_a_pool_of_one() {
        let p = pool(1);
        let mut r = Router::new(RoutePolicy::RoundRobin);
        assert_eq!(
            r.route_avoiding(Nanos::ZERO, "a", Nanos::ZERO, &p.slots, Some(0)),
            0,
            "nowhere else to go"
        );
    }

    #[test]
    fn labels() {
        assert_eq!(RoutePolicy::RoundRobin.label(), "round-robin");
        assert_eq!(RoutePolicy::LeastLoaded.label(), "least-loaded");
        assert_eq!(RoutePolicy::RestoreAware.label(), "restore-aware");
        assert_eq!(RoutePolicy::ALL.len(), 3);
    }
}
