//! Per-principal admission control: token-bucket rate limiting plus a
//! global concurrency ceiling.
//!
//! Each principal owns a [`TokenBucket`] refilled continuously in
//! *virtual* time — the refill is a pure function of the elapsed
//! `Nanos` between decisions, so identical request timelines produce
//! identical admit/reject sequences on every run and host. A request
//! that clears its bucket still has to fit under the global in-flight
//! ceiling; the two failure modes are counted separately
//! ([`Decision::Reject`] vs [`Decision::Defer`]) because they mean
//! different things operationally: rejects are shed load (the principal
//! exceeded its contract), defers are backpressure (the platform is
//! saturated) and the driving loop is expected to park and retry them
//! as capacity frees up.

use std::collections::HashMap;

use gh_sim::Nanos;

/// Admission knobs.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Steady-state tokens per second granted to each principal.
    pub rate_per_sec: f64,
    /// Bucket capacity: the largest burst a principal can spend
    /// back-to-back. Zero means every request is rejected.
    pub burst: u64,
    /// Global concurrency ceiling across all principals; `None` lifts
    /// it. Requests over the ceiling are deferred, not rejected.
    pub max_in_flight: Option<usize>,
}

impl AdmissionConfig {
    /// Rate-limit only: per-principal buckets, no concurrency ceiling.
    pub fn per_principal(rate_per_sec: f64, burst: u64) -> AdmissionConfig {
        AdmissionConfig {
            rate_per_sec,
            burst,
            max_in_flight: None,
        }
    }
}

/// One principal's bucket. Tokens refill lazily: each decision first
/// credits `elapsed × rate`, capped at `burst`, then spends one token
/// if a whole token is available.
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    tokens: f64,
    last: Nanos,
}

impl TokenBucket {
    /// A bucket born full at virtual time `at`.
    pub fn full(burst: u64, at: Nanos) -> TokenBucket {
        TokenBucket {
            tokens: burst as f64,
            last: at,
        }
    }

    /// Tokens currently available (after refilling up to `now`).
    pub fn available(&self, now: Nanos, rate_per_sec: f64, burst: u64) -> f64 {
        let elapsed = now.checked_sub(self.last).unwrap_or(Nanos::ZERO);
        (self.tokens + elapsed.as_secs_f64() * rate_per_sec).min(burst as f64)
    }

    /// Refills up to `now`, then tries to spend one token.
    pub fn try_take(&mut self, now: Nanos, rate_per_sec: f64, burst: u64) -> bool {
        self.tokens = self.available(now, rate_per_sec, burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// The gateway's verdict on one arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Cleared the bucket and the ceiling — send it to the backend.
    Admit,
    /// The principal's bucket is dry — shed the request.
    Reject,
    /// The global ceiling is full — park the request and retry when an
    /// in-flight request completes.
    Defer,
}

/// Admission state across all principals. Principals are identified by
/// their deterministic index (the same `u64` the fleet and trace
/// generators draw), not by name, so no string hashing is on the
/// decision path.
pub struct AdmissionControl {
    cfg: AdmissionConfig,
    buckets: HashMap<u64, TokenBucket>,
    in_flight: usize,
    /// Requests shed by per-principal rate limiting.
    pub rejected: u64,
    /// Requests parked (at least once) by the concurrency ceiling.
    pub deferred: u64,
}

impl AdmissionControl {
    /// Fresh state under `cfg`: every bucket starts full at its
    /// principal's first arrival.
    pub fn new(cfg: AdmissionConfig) -> AdmissionControl {
        AdmissionControl {
            cfg,
            buckets: HashMap::new(),
            in_flight: 0,
            rejected: 0,
            deferred: 0,
        }
    }

    /// The configuration this controller runs under.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Decides `principal`'s arrival at virtual time `now`, updating
    /// the reject/defer counters. [`Decision::Admit`] does *not* bump
    /// the in-flight count — the driver calls [`AdmissionControl::begin`]
    /// when the request actually enters the backend (cache hits are
    /// served without occupying a slot).
    pub fn admit(&mut self, principal: u64, now: Nanos) -> Decision {
        let cfg = self.cfg;
        let bucket = self
            .buckets
            .entry(principal)
            .or_insert_with(|| TokenBucket::full(cfg.burst, now));
        if !bucket.try_take(now, cfg.rate_per_sec, cfg.burst) {
            self.rejected += 1;
            return Decision::Reject;
        }
        if !self.has_capacity() {
            self.deferred += 1;
            return Decision::Defer;
        }
        Decision::Admit
    }

    /// True while another request fits under the ceiling.
    pub fn has_capacity(&self) -> bool {
        self.cfg
            .max_in_flight
            .is_none_or(|cap| self.in_flight < cap)
    }

    /// Records a request entering the backend.
    pub fn begin(&mut self) {
        self.in_flight += 1;
    }

    /// Records an in-flight request completing, freeing ceiling room.
    pub fn end(&mut self) {
        debug_assert!(self.in_flight > 0, "end() without matching begin()");
        self.in_flight -= 1;
    }

    /// Requests currently occupying the ceiling.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut ac = AdmissionControl::new(AdmissionConfig::per_principal(100.0, 0));
        for i in 0..10u64 {
            let at = Nanos::from_millis(i * 500);
            assert_eq!(ac.admit(0, at), Decision::Reject);
        }
        assert_eq!(ac.rejected, 10);
        assert_eq!(ac.deferred, 0);
    }

    #[test]
    fn burst_equal_to_bucket_admits_exactly_capacity() {
        // A full bucket of 4 admits exactly 4 back-to-back requests at
        // the same instant; the 5th is shed.
        let mut ac = AdmissionControl::new(AdmissionConfig::per_principal(1.0, 4));
        let at = Nanos::from_millis(1);
        for _ in 0..4 {
            assert_eq!(ac.admit(7, at), Decision::Admit);
        }
        assert_eq!(ac.admit(7, at), Decision::Reject);
        assert_eq!(ac.rejected, 1);
    }

    #[test]
    fn bucket_refills_with_virtual_time() {
        let mut ac = AdmissionControl::new(AdmissionConfig::per_principal(2.0, 1));
        let t0 = Nanos::ZERO;
        assert_eq!(ac.admit(0, t0), Decision::Admit);
        assert_eq!(ac.admit(0, t0), Decision::Reject, "bucket dry");
        // 2 tokens/s → one whole token back after 500ms.
        assert_eq!(
            ac.admit(0, Nanos::from_millis(499)),
            Decision::Reject,
            "still fractionally short"
        );
        assert_eq!(ac.admit(0, Nanos::from_millis(999)), Decision::Admit);
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut ac = AdmissionControl::new(AdmissionConfig::per_principal(1000.0, 2));
        // A long quiet period must not bank more than `burst` tokens.
        let late = Nanos::from_secs(100);
        assert_eq!(ac.admit(0, late), Decision::Admit);
        assert_eq!(ac.admit(0, late), Decision::Admit);
        assert_eq!(ac.admit(0, late), Decision::Reject);
    }

    #[test]
    fn principals_have_independent_buckets() {
        let mut ac = AdmissionControl::new(AdmissionConfig::per_principal(1.0, 1));
        let at = Nanos::from_millis(1);
        assert_eq!(ac.admit(0, at), Decision::Admit);
        assert_eq!(ac.admit(0, at), Decision::Reject);
        assert_eq!(ac.admit(1, at), Decision::Admit, "fresh principal");
    }

    #[test]
    fn ceiling_defers_and_releases() {
        let mut ac = AdmissionControl::new(AdmissionConfig {
            rate_per_sec: 1000.0,
            burst: 100,
            max_in_flight: Some(2),
        });
        let at = Nanos::from_millis(1);
        assert_eq!(ac.admit(0, at), Decision::Admit);
        ac.begin();
        assert_eq!(ac.admit(0, at), Decision::Admit);
        ac.begin();
        assert_eq!(ac.admit(0, at), Decision::Defer);
        assert_eq!(ac.deferred, 1);
        ac.end();
        assert!(ac.has_capacity());
        assert_eq!(ac.admit(0, at), Decision::Admit);
    }
}
