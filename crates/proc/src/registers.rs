//! Per-thread CPU register files.
//!
//! Groundhog stores "the CPU state of all threads using ptrace" in its
//! snapshot (§4.2) and restores it during rollback (§4.4). The register
//! file here is an x86-64-shaped set of 18 general registers; function
//! execution scrambles them (as real computation would), and restores must
//! put back the snapshot values bit-exactly.

use gh_mem::Taint;

/// Number of registers in the file.
pub const NUM_REGS: usize = 18;

/// Register names, x86-64 style.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Reg {
    Rip = 0,
    Rsp,
    Rbp,
    Rax,
    Rbx,
    Rcx,
    Rdx,
    Rsi,
    Rdi,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    Rflags,
}

/// A thread's register file plus its taint (registers can carry request
/// secrets, e.g. crypto round keys).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegisterSet {
    regs: [u64; NUM_REGS],
    /// Taint of the values currently in the registers.
    pub taint: Taint,
}

impl Default for RegisterSet {
    fn default() -> Self {
        Self::new()
    }
}

impl RegisterSet {
    /// A zeroed, clean register file.
    pub fn new() -> Self {
        Self {
            regs: [0; NUM_REGS],
            taint: Taint::Clean,
        }
    }

    /// Reads a register.
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        self.regs[r as usize]
    }

    /// Writes a register, merging `taint` into the file's taint.
    #[inline]
    pub fn set(&mut self, r: Reg, value: u64, taint: Taint) {
        self.regs[r as usize] = value;
        self.taint = self.taint.merge(taint);
    }

    /// Scrambles the whole file deterministically from `seed` with the
    /// given taint — models arbitrary computation on request data.
    pub fn scramble(&mut self, seed: u64, taint: Taint) {
        // Pre-mix the seed so nearby seeds yield unrelated streams.
        let mut z = seed
            .wrapping_mul(0xFF51_AFD7_ED55_8CCD)
            .wrapping_add(0x2545_F491_4F6C_DD1D)
            | 1;
        for r in self.regs.iter_mut() {
            z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ (z >> 9);
            *r = z;
        }
        self.taint = self.taint.merge(taint);
    }

    /// Raw view of all registers.
    pub fn raw(&self) -> &[u64; NUM_REGS] {
        &self.regs
    }

    /// Overwrites the file wholesale (a ptrace `SETREGS`); the new values'
    /// taint replaces the old.
    pub fn load(&mut self, other: &RegisterSet) {
        self.regs = other.regs;
        self.taint = other.taint;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_mem::RequestId;

    #[test]
    fn get_set_roundtrip() {
        let mut r = RegisterSet::new();
        r.set(Reg::Rax, 0xABCD, Taint::Clean);
        assert_eq!(r.get(Reg::Rax), 0xABCD);
        assert_eq!(r.get(Reg::Rbx), 0);
        assert_eq!(r.taint, Taint::Clean);
    }

    #[test]
    fn taint_merges_on_write() {
        let mut r = RegisterSet::new();
        r.set(Reg::Rdi, 1, Taint::One(RequestId(3)));
        assert!(r.taint.may_contain(RequestId(3)));
        r.set(Reg::Rsi, 2, Taint::One(RequestId(4)));
        assert_eq!(r.taint, Taint::Many);
    }

    #[test]
    fn scramble_is_deterministic_and_changes_state() {
        let mut a = RegisterSet::new();
        let mut b = RegisterSet::new();
        a.scramble(42, Taint::Clean);
        b.scramble(42, Taint::Clean);
        assert_eq!(a, b);
        let mut c = RegisterSet::new();
        c.scramble(43, Taint::Clean);
        assert_ne!(a, c);
        assert_ne!(a.get(Reg::Rip), 0);
    }

    #[test]
    fn load_restores_bit_exact_and_clears_taint() {
        let snapshot = RegisterSet::new();
        let mut live = RegisterSet::new();
        live.scramble(7, Taint::One(RequestId(9)));
        assert_ne!(live, snapshot);
        live.load(&snapshot);
        assert_eq!(live, snapshot);
        assert_eq!(live.taint, Taint::Clean);
    }
}
