//! Extension experiment (E17): fleet scheduling — sojourn time and
//! goodput across pool size × offered load × routing policy.
//!
//! Quantifies the fleet-level version of §4's claim: once a pool has
//! more than one container, a router that knows when restores complete
//! (`restore-aware`) can keep Groundhog's restoration off every
//! request's critical path at loads where a restore-blind router
//! (`round-robin`, `least-loaded`) queues requests behind in-progress
//! restores.
//!
//! ```text
//! cargo run --release -p gh-bench --bin fleetsweep            # parallel cells
//! cargo run --release -p gh-bench --bin fleetsweep -- --serial
//! ```
//!
//! Cells (pool × load × policy; pool × strategy) are independent — each
//! builds its own kernels and seeds — so they are sharded across worker
//! threads by `gh_bench::harness::run_cells` with a deterministic
//! ordered merge: the CSVs are byte-identical to `--serial` (the CI
//! determinism job diffs exactly that).

use gh_bench::harness::{run_cells, serial_requested};
use gh_bench::{smoke, write_csv};
use gh_faas::fleet::{run_fleet, FleetConfig, RoutePolicy};
use gh_functions::catalog::by_name;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use groundhog_core::GroundhogConfig;

fn main() {
    let spec = by_name("fannkuch (p)").expect("in catalog");
    // Per-container capacity under GH is ~125 r/s for fannkuch; sweep
    // pool sizes across fractions of the pooled capacity. The smoke
    // mode (GH_BENCH_SMOKE=1) trims the sweep for CI.
    let requests_per_slot = if smoke() { 60 } else { 150 };
    let pools: &[usize] = if smoke() { &[1, 2] } else { &[1, 2, 4, 8] };
    let fracs: &[f64] = if smoke() {
        &[0.6, 0.9]
    } else {
        &[0.3, 0.6, 0.8, 0.9]
    };
    let strat_pools: &[usize] = if smoke() { &[1, 2] } else { &[1, 2, 4] };
    println!(
        "== E17 — fleet sweep: {} (exec ≈ {:.1}ms, restore ≈ {:.1}ms) ==\n",
        spec.name, spec.base_invoker_ms, spec.paper_restore_ms
    );
    let mut table = TextTable::new(&[
        "pool",
        "offered r/s",
        "policy",
        "util",
        "mean ms",
        "p99 ms",
        "goodput r/s",
        "queue p99",
        "restore overlap",
    ]);
    let serial = serial_requested();
    let mut cells: Vec<(usize, f64, RoutePolicy)> = Vec::new();
    for &pool in pools {
        for &frac in fracs {
            for policy in RoutePolicy::ALL {
                cells.push((pool, 125.0 * pool as f64 * frac, policy));
            }
        }
    }
    let rows = run_cells(&cells, serial, |&(pool, offered, policy)| {
        let r = run_fleet(
            &spec,
            StrategyKind::Gh,
            GroundhogConfig::gh(),
            pool,
            FleetConfig::fixed(policy, offered, 29),
            requests_per_slot * pool,
        )
        .expect("fleet run");
        vec![
            format!("{pool}"),
            format!("{offered:.0}"),
            policy.label().to_string(),
            format!("{:.2}", r.utilization),
            format!("{:.2}", r.mean_ms),
            format!("{:.2}", r.p99_ms),
            format!("{:.1}", r.goodput_rps),
            format!("{:.0}", r.stats.queue_p99),
            format!("{:.2}", r.stats.restore_overlap_ratio),
        ]
    });
    for row in rows {
        table.row_owned(row);
    }
    println!("{}", table.render());
    write_csv("fleetsweep", &table);

    // Second axis: isolation strategy. BASE pays no restore, so its
    // sojourn floor is the reference GH must track at every pool size.
    let mut strat = TextTable::new(&[
        "pool",
        "offered r/s",
        "strategy",
        "mean ms",
        "p99 ms",
        "goodput r/s",
    ]);
    let mut strat_cells: Vec<(usize, StrategyKind)> = Vec::new();
    for &pool in strat_pools {
        for kind in [StrategyKind::Base, StrategyKind::GhNop, StrategyKind::Gh] {
            strat_cells.push((pool, kind));
        }
    }
    let strat_rows = run_cells(&strat_cells, serial, |&(pool, kind)| {
        let offered = 125.0 * pool as f64 * 0.6;
        let r = run_fleet(
            &spec,
            kind,
            GroundhogConfig::gh(),
            pool,
            FleetConfig::fixed(RoutePolicy::RestoreAware, offered, 29),
            requests_per_slot * pool,
        )
        .expect("fleet run");
        vec![
            format!("{pool}"),
            format!("{offered:.0}"),
            kind.label().to_string(),
            format!("{:.2}", r.mean_ms),
            format!("{:.2}", r.p99_ms),
            format!("{:.1}", r.goodput_rps),
        ]
    });
    for row in strat_rows {
        strat.row_owned(row);
    }
    println!("{}", strat.render());
    write_csv("fleetsweep_strategies", &strat);
    println!(
        "Expected shape: at low load all policies coincide (restores hide in idle \
         gaps on every container). As offered load approaches the pooled capacity, \
         the restore-aware router keeps sojourn times flat the longest, because it \
         never parks a request behind an in-progress restore while a provably-clean \
         container exists. Across strategies, GH tracks BASE at mid load for every \
         pool size — the fleet-level form of the paper's central claim."
    );
}
