//! Extension experiment (E20): fault injection — goodput, tail latency
//! and retry accounting across container-death rate × retry policy ×
//! node loss over the trace-driven cluster.
//!
//! Quantifies the robustness layer PR 9 adds: how much goodput a
//! Groundhog cluster keeps when containers die mid-request and whole
//! nodes drop out for outage windows, and what the retry policy
//! (retry-after-restore on the same container vs rerouting to another
//! slot) does to the tail while bounded-attempt backoff keeps
//! duplicate executions accounted.
//!
//! ```text
//! cargo run --release -p gh-bench --bin faultsweep            # parallel cells
//! cargo run --release -p gh-bench --bin faultsweep -- --serial
//! ```
//!
//! Every cell is a pure function of its config — fault draws are
//! stateless hashes of `(seed, request, attempt)`, so a cell carries no
//! cross-cell state. Cells fan out over OS threads via [`run_cells`]
//! with the cluster inside each cell pinned to `ExecMode::Serial`
//! (cells are the parallelism; nesting node workers under cell workers
//! would just thrash a small host). The CSV is byte-identical to
//! `--serial` and across repeats — the CI determinism matrix diffs
//! exactly that, which pins the whole fault path (injection, backoff,
//! failover, accounting) as deterministic.

use gh_bench::harness::{run_cells, serial_requested};
use gh_bench::{smoke, write_csv};
use gh_faas::cluster::{run_cluster_with, ClusterConfig, ClusterResult, PlacePolicy};
use gh_faas::fault::{FaultConfig, RetryPolicy};
use gh_faas::fleet::ExecMode;
use gh_faas::trace::{stable_rps, synthetic_catalog, TraceConfig};
use gh_functions::FunctionSpec;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use gh_sim::Nanos;
use groundhog_core::GroundhogConfig;

const SEED: u64 = 31;
const NODES: usize = 4;

#[derive(Clone, Copy)]
struct Cell {
    death_rate: f64,
    node_loss_rate: f64,
    retry: RetryPolicy,
}

fn run_cell(cell: &Cell, catalog: &[FunctionSpec], trace: &TraceConfig) -> ClusterResult {
    let mut fc = FaultConfig::deaths(SEED, cell.death_rate);
    fc.restore_failure_rate = cell.death_rate / 2.0;
    fc.node_loss_rate = cell.node_loss_rate;
    fc.node_loss_window = Nanos::from_millis(250);
    fc.retry = cell.retry;
    let mut ccfg = ClusterConfig::new(NODES, PlacePolicy::RoundRobin, StrategyKind::Gh, SEED);
    ccfg.slots_per_pool = 2;
    if fc.is_active() {
        ccfg = ccfg.with_faults(fc);
    }
    run_cluster_with(
        trace,
        catalog,
        &ccfg,
        GroundhogConfig::gh(),
        ExecMode::Serial,
    )
    .expect("cluster run")
}

fn main() {
    let functions: u32 = if smoke() { 32 } else { 64 };
    let requests: u64 = if smoke() { 6_000 } else { 30_000 };
    let catalog = synthetic_catalog(functions, SEED);
    // Rated like the cluster sweep: hottest rank near 70% of its pool
    // capacity, so retry storms show up as queueing rather than
    // unbounded overload.
    let rps = stable_rps(&catalog, 4, 1.0, 0.7);
    let trace = TraceConfig {
        principals: 64,
        ..TraceConfig::new(functions, requests, rps, SEED)
    };
    let mut cells = Vec::new();
    for &death_rate in &[0.0, 0.01, 0.05] {
        for &node_loss_rate in &[0.0, 0.1] {
            for retry in [RetryPolicy::bounded(), RetryPolicy::rerouting()] {
                cells.push(Cell {
                    death_rate,
                    node_loss_rate,
                    retry,
                });
            }
        }
    }
    println!(
        "== E20 — fault sweep: {NODES} nodes, {functions} functions, {requests} requests, \
         death x node-loss x retry grid, outage window 250ms ==\n"
    );
    let results = run_cells(&cells, serial_requested(), |c| {
        run_cell(c, &catalog, &trace)
    });
    let mut table = TextTable::new(&[
        "death",
        "node loss",
        "retry",
        "completed",
        "abandoned",
        "deaths",
        "retries",
        "dup exec",
        "failovers",
        "goodput r/s",
        "mean ms",
        "p99 ms",
    ]);
    for (cell, r) in cells.iter().zip(&results) {
        table.row_owned(vec![
            format!("{:.2}", cell.death_rate),
            format!("{:.2}", cell.node_loss_rate),
            cell.retry.label(),
            format!("{}", r.completed),
            format!("{}", r.faults.abandoned),
            format!("{}", r.faults.deaths),
            format!("{}", r.faults.retries),
            format!("{}", r.faults.duplicates),
            format!("{}", r.faults.node_losses),
            format!("{:.1}", r.goodput_rps),
            format!("{:.2}", r.mean_ms),
            format!("{:.2}", r.p99_ms),
        ]);
    }
    println!("{}", table.render());
    write_csv("faultsweep", &table);
    println!(
        "Expected shape: the zero-rate rows reproduce the fault-free cluster \
         exactly (the disabled plan adds no events and draws no RNG). Each \
         death costs a backoff plus a container recovery cold-start, so at a \
         ~70%-utilized pool the goodput hit is a bounded 10-20% at 1% deaths \
         and grows roughly linearly with the rate — the tail amplifies more, \
         because recoveries arrive in queue-visible bursts. Rerouting trades \
         places with retry-after-restore on p99 depending on whether the \
         victim slot's recovery or the sibling's queue is the bottleneck; node \
         loss shifts work to the surviving replica, so failovers grow with the \
         outage rate while abandoned stays near zero until every replica of a \
         function is down at once."
    );
}
