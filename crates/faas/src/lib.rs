//! An OpenWhisk-model FaaS platform.
//!
//! §5.1 describes the deployment this crate models: a distributed
//! OpenWhisk where the *invoker* hosts function containers (one core
//! each) and Groundhog interposes on the actionloop proxy's stdin/stdout
//! between the platform and the function process. The pieces:
//!
//! - [`container::Container`]: one function container driven through
//!   Fig. 1's life cycle — environment instantiation, runtime
//!   initialization, data initialization (the dummy warm-up request of
//!   §4.1), strategy preparation (GH snapshot), then the serve/restore
//!   loop. Requests are buffered until the manager reports the process
//!   clean (§4.5).
//! - [`proxy`]: the interposition costs of the actionloop design — the
//!   manager's extra pipe hop, per-KiB payload copying, and the
//!   refactored Node.js wrapper penalty (§5.3.1).
//! - [`platform::Platform`]: a facade wiring controller-side delays
//!   (E2E − invoker, calibrated per benchmark from the paper's BASE
//!   columns) around containers.
//! - [`client`]: the two workloads of §5.2/§5.3 — a closed-loop low-load
//!   client (latency; restores complete between requests) and a
//!   saturating client (throughput; restores eat into capacity) — plus
//!   the multi-core scaling harness of §5.3.4.
//! - [`fleet`]: the event-driven fleet scheduler — N containers per
//!   function on interleaved virtual timelines behind a router with
//!   pluggable policies (round-robin, least-loaded, restore-aware),
//!   admission queues with depth percentiles, and an autoscaler.
//! - [`openloop`]: open-loop Poisson arrivals against a single
//!   container — a fleet of one, preserved as the §4 limit harness.
//! - [`trace`]: the trace-driven workload generator — thousands of
//!   functions with Zipfian popularity, diurnal load envelopes and
//!   bursty principals, all on seeded [`gh_sim::DetRng`] streams.
//! - [`cluster`]: N simulated worker nodes, each an independent fleet
//!   on its own event queue, behind a deterministic placement
//!   front-end; nodes run host-parallel with results bit-identical to
//!   the serial reference.
//! - [`gateway`]: the [`gh_gateway`] policies (result cache, admission
//!   control, predictive pre-warming) wired in front of a fleet as an
//!   event-driven front-end; a disabled gateway is byte-identical to
//!   the ungated fleet (the differential oracle), and the cluster gets
//!   the same policies as a pure per-node fold ([`cluster::GatewayFront`]).
//! - [`fault`]: seeded deterministic fault injection — container death
//!   mid-request, restore failure, node loss — as pure hash draws, so
//!   fault-free runs stay byte-identical and node-parallel runs stay
//!   deterministic; bounded-attempt exponential-backoff retries.
//! - [`workflow`]: workflow composition over the platform — static
//!   chains and dynamic DAGs (fan-out / fan-in / conditional edges)
//!   with idempotent commits keyed by `(workflow, hop path)`, an
//!   AFT-style read-atomic KV shim, Groundhog's taint tracking
//!   extended across hops, crash-exact recovery under fault
//!   injection, and cross-node migration of in-flight hops behind a
//!   failure-aware autoscaler ([`cluster::scale`]).

pub mod client;
pub mod cluster;
pub mod container;
pub mod fault;
pub mod fleet;
pub mod gateway;
pub mod openloop;
pub mod platform;
pub mod proxy;
pub mod request;
pub mod trace;
pub mod workflow;

pub use cluster::scale::{NodeScaleConfig, NodeScaler, ScaleStats};
pub use cluster::{
    run_cluster, run_cluster_gateway, ClusterConfig, ClusterGatewayResult, ClusterResult,
    PlacePolicy,
};
pub use container::{Container, InvokeOutcome};
pub use fault::{FaultConfig, FaultPlan, FaultStats, RetryPolicy};
pub use fleet::{Fleet, FleetConfig, FleetResult, Pool, RoutePolicy};
pub use gateway::{run_gateway_fleet, GatewayFleet, GatewayFleetConfig, GatewayResult};
pub use platform::{Platform, PlatformConfig};
pub use request::{Request, Response};
pub use trace::{synthetic_catalog, TraceConfig, TraceEvent, TraceGen};
pub use workflow::dag::{random_dag_spec, run_dag_workflows, DagNode, DagOp, DagResult, DagSpec};
pub use workflow::migrate::{run_migrating_dags, MigrateConfig, MigrateResult};
pub use workflow::{run_workflows, WorkflowConfig, WorkflowResult};
