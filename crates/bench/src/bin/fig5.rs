//! Fig. 5 — relative throughput of GH-NOP, GH and FORK versus the
//! insecure baseline (4 containers / 4 cores, saturating client), with
//! the paper's "predicted reciprocal" annotation.
//!
//! ```text
//! cargo run --release -p gh-bench --bin fig5
//! ```

use gh_bench::{fmt_rel, run_latency, run_throughput, write_csv, xput_requests};
use gh_functions::catalog::catalog;
use gh_functions::Suite;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use gh_sim::stats::relative;

fn main() {
    let reqs = xput_requests();
    let suites = [Suite::PyPerformance, Suite::PolyBench, Suite::FaaSProfiler];
    let mut csv = TextTable::new(&[
        "benchmark",
        "base_xput",
        "rel_ghnop",
        "rel_gh",
        "rel_fork",
        "predicted_gh",
    ]);

    for suite in suites {
        println!(
            "== Fig. 5 — {} (throughput relative to BASE; higher is better) ==\n",
            suite.label()
        );
        let mut table =
            TextTable::new(&["benchmark", "base r/s", "GH-NOP", "GH", "fork", "pred. GH"]);
        for spec in catalog().iter().filter(|s| s.suite == suite) {
            let base = run_throughput(spec, StrategyKind::Base, reqs, 2).expect("base");
            let rel_of = |kind| run_throughput(spec, kind, reqs, 2).map(|x| relative(base, x));
            let nop = rel_of(StrategyKind::GhNop);
            let gh = rel_of(StrategyKind::Gh);
            let fork = rel_of(StrategyKind::Fork);
            // The paper's annotation: GH throughput should approximate
            // 1 / (1 + (in-function + restore overhead) / base invoker
            // latency). Estimate from a short latency run.
            let pred = {
                let b = run_latency(spec, StrategyKind::Base, 6, 3).expect("base lat");
                run_latency(spec, StrategyKind::Gh, 6, 3).map(|g| {
                    let over =
                        (g.invoker_mean_ms() - b.invoker_mean_ms()).max(0.0) + g.restore_mean_ms();
                    1.0 / (1.0 + over / b.invoker_mean_ms())
                })
            };
            let row = vec![
                spec.name.to_string(),
                format!("{base:.2}"),
                fmt_rel(nop),
                fmt_rel(gh),
                fmt_rel(fork),
                fmt_rel(pred),
            ];
            table.row_owned(row.clone());
            csv.row_owned(row);
        }
        println!("{}", table.render());
    }
    write_csv("fig5", &csv);
    println!(
        "Expected shapes (paper §5.3.1): GH within 10% of BASE for most C/Python \
         benchmarks, up to ~50% lower on very short ones; Node.js reductions up to ~70% \
         (base64/img-resize/primes have large restore sets); the GH bar ≈ the predicted \
         reciprocal; fork ≈ GH except on very short benchmarks where GH wins."
    );
}
