//! Randomized test: Groundhog's central correctness claim.
//!
//! For *any* activation behaviour — arbitrary interleavings of page
//! writes, reads, mmaps, munmaps, brk moves and madvise — restoring
//! returns the process to a state bit-identical to the snapshot
//! (memory contents, layout, registers), with zero surviving taint.
//!
//! Cases are generated with the workspace's own seeded [`DetRng`]
//! (crates.io is unavailable in the build environment, so `proptest`
//! cannot be used); every run replays the identical case set.

use gh_sim::DetRng;

use gh_mem::{PageRange, Perms, RequestId, Taint, Touch, VmaKind, Vpn};
use gh_proc::Kernel;
use groundhog_core::restore::verify_matches_snapshot;
use groundhog_core::{GroundhogConfig, Manager, TrackerKind};

#[derive(Clone, Debug)]
enum Act {
    Write(u64, u64),
    Read(u64),
    Mmap(u64),
    MunmapChunk(u64, u64),
    Brk(i64),
    Madvise(u64, u64),
    ScrambleRegs(u64),
}

/// The full behaviour alphabet (sound for the soft-dirty tracker).
fn random_act(rng: &mut DetRng) -> Act {
    match rng.next_below(7) {
        0 => Act::Write(rng.next_below(64), rng.next_u64()),
        1 => Act::Read(rng.next_below(64)),
        2 => Act::Mmap(1 + rng.next_below(15)),
        3 => Act::MunmapChunk(rng.next_below(64), 1 + rng.next_below(3)),
        4 => Act::Brk(rng.next_below(40) as i64 - 8),
        5 => Act::Madvise(rng.next_below(64), 1 + rng.next_below(3)),
        _ => Act::ScrambleRegs(rng.next_u64()),
    }
}

/// UFFD cannot observe newly-paged pages, so restrict to the workloads
/// it is sound for: writes, reads of resident pages, register scrambles
/// (§4.3 prototyped it for exactly this).
fn random_act_uffd(rng: &mut DetRng) -> Act {
    match rng.next_below(3) {
        0 => Act::Write(rng.next_below(64), rng.next_u64()),
        1 => Act::Read(rng.next_below(64)),
        _ => Act::ScrambleRegs(rng.next_u64()),
    }
}

fn run_case(tracker: TrackerKind, acts: Vec<Act>, rounds: usize, case: u64) {
    let mut kernel = Kernel::boot();
    let pid = kernel.spawn("fuzz");
    // Build a small image: one anon region + a little heap.
    let heap_base = kernel.process(pid).unwrap().mem.config().heap_base;
    let region = kernel
        .run_charged(pid, |p, frames| {
            let r = p.mem.mmap(64, Perms::RW, VmaKind::Anon).unwrap();
            p.mem.set_brk(Vpn(heap_base.0 + 16), frames).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(0xC1EA4), Taint::Clean, frames)
                    .unwrap();
            }
            r
        })
        .unwrap()
        .0;
    let cfg = GroundhogConfig {
        tracker,
        ..GroundhogConfig::gh()
    };
    let mut mgr = Manager::new(pid, cfg);
    mgr.snapshot_now(&mut kernel).unwrap();
    let snapshot = mgr.snapshot().unwrap().clone();

    for round in 0..rounds {
        let req = RequestId(round as u64 + 1);
        mgr.begin_request(&mut kernel, "fuzz-principal").unwrap();
        kernel
            .run_charged(pid, |p, frames| {
                for act in &acts {
                    match act {
                        Act::Write(off, val) => {
                            let _ = p.mem.touch(
                                Vpn(region.start.0 + off),
                                Touch::WriteWord(*val),
                                Taint::One(req),
                                frames,
                            );
                        }
                        Act::Read(off) => {
                            let _ = p.mem.touch(
                                Vpn(region.start.0 + off),
                                Touch::Read,
                                Taint::Clean,
                                frames,
                            );
                        }
                        Act::Mmap(len) => {
                            if let Ok(r) = p.mem.mmap(*len, Perms::RW, VmaKind::Anon) {
                                let _ = p.mem.touch(
                                    r.start,
                                    Touch::WriteWord(0x11),
                                    Taint::One(req),
                                    frames,
                                );
                            }
                        }
                        Act::MunmapChunk(off, len) => {
                            let _ = p
                                .mem
                                .munmap(PageRange::at(Vpn(region.start.0 + off), *len), frames);
                        }
                        Act::Brk(delta) => {
                            let cur = p.mem.brk().0 as i64;
                            let new = (cur + delta).max(heap_base.0 as i64) as u64;
                            let _ = p.mem.set_brk(Vpn(new), frames);
                        }
                        Act::Madvise(off, len) => {
                            let _ = p.mem.madvise_dontneed(
                                PageRange::at(Vpn(region.start.0 + off), *len),
                                frames,
                            );
                        }
                        Act::ScrambleRegs(seed) => {
                            p.threads[0].regs.scramble(*seed, Taint::One(req));
                        }
                    }
                }
            })
            .unwrap();
        mgr.end_request(&mut kernel).unwrap();

        // The restored process must match the snapshot bit-exactly...
        verify_matches_snapshot(&kernel, pid, &snapshot)
            .unwrap_or_else(|e| panic!("case {case} round {round}: {e}"));
        // ...and carry no trace of the request.
        let proc = kernel.process(pid).unwrap();
        assert!(
            proc.mem.tainted_pages(req, kernel.frames()).is_empty(),
            "case {case} round {round}: tainted pages survive"
        );
        assert!(!proc.main_thread().regs.taint.may_contain(req));
    }
}

#[test]
fn restore_reverts_arbitrary_behaviour_softdirty() {
    for case in 0..48u64 {
        let mut rng = DetRng::new(0x5EED5D ^ case);
        let acts: Vec<Act> = (0..1 + rng.next_below(39))
            .map(|_| random_act(&mut rng))
            .collect();
        run_case(TrackerKind::SoftDirty, acts, 2, case);
    }
}

#[test]
fn restore_reverts_write_read_behaviour_uffd() {
    for case in 0..48u64 {
        let mut rng = DetRng::new(0x5EED0F ^ case);
        let acts: Vec<Act> = (0..1 + rng.next_below(39))
            .map(|_| random_act_uffd(&mut rng))
            .collect();
        run_case(TrackerKind::Uffd, acts, 2, case);
    }
}
