//! The container pool: N containers of one function on interleaved
//! virtual timelines.
//!
//! Each [`Slot`] wraps a [`Container`] with the scheduling state the
//! fleet needs — its admission queue, the virtual times at which its
//! current response leaves and its restore completes, and the
//! accounting that yields per-container utilization and the
//! restore-overlap ratio (how much restoration hid in idle gaps rather
//! than delaying a request).
//!
//! The pool also owns the **shared snapshot store**
//! ([`gh_mem::SnapshotStore`]): every GH container's clean-state pages
//! are interned into it at cold start, so pool snapshot memory is one
//! deduplicated base image plus per-container deltas instead of
//! `pool_size ×` private copies. [`Pool::memory`] reports the dedup
//! ratio and the resident bytes per container that
//! [`FleetStats`](super::FleetStats) surfaces.

use gh_functions::FunctionSpec;
use gh_isolation::{StrategyError, StrategyKind};
use gh_mem::{SnapshotStore, StoreHandle};
use gh_sim::{DetRng, Nanos};
use groundhog_core::GroundhogConfig;

use crate::container::Container;
use crate::request::Request;

use super::queue::{AdmissionQueue, Pending};

/// What one dispatch produced, as the fleet's event loop sees it.
#[derive(Clone, Copy, Debug)]
pub struct Dispatched {
    /// Sojourn time (arrival at the router → response), queueing included.
    pub sojourn: Nanos,
    /// Virtual time the response left the container.
    pub resp_at: Nanos,
    /// Virtual time the container is provably clean again.
    pub ready_at: Nanos,
    /// Id of the request this dispatch served.
    pub id: u64,
    /// Payload hash carried from the [`Pending`]
    /// request — lets the gateway fill its result cache without a side
    /// table.
    pub payload_hash: u64,
    /// Idempotency flag carried from the request.
    pub idempotent: bool,
    /// Response payload size, KiB (what a result cache stores).
    pub output_kb: u64,
}

/// One pool slot: a container plus its scheduling state.
pub struct Slot {
    /// The warm container.
    pub container: Container,
    /// Requests assigned here, waiting for the container to be clean.
    pub queue: AdmissionQueue,
    /// Virtual time the in-flight response leaves (equals `ready_at` for
    /// strategies with no off-path work).
    pub resp_at: Nanos,
    /// Virtual time the container is clean and idle again.
    pub ready_at: Nanos,
    /// Accumulated busy time (execution + restore).
    pub busy: Nanos,
    /// Accumulated off-critical-path (restore/teardown) time.
    pub restore_total: Nanos,
    /// Portion of `restore_total` that overlapped idle gaps instead of
    /// delaying a request.
    pub restore_hidden: Nanos,
    /// Off-path span of the most recent invocation, not yet classified
    /// as hidden or exposed (resolved at the next dispatch).
    pending_restore: Nanos,
    /// Response time of the most recent invocation.
    prev_resp_at: Nanos,
    /// Requests served.
    pub served: u64,
    /// First-touch lazy-restore faults taken inside requests on this
    /// container (lazy restore mode; the amortized half of the restore
    /// work whose critical-path half `restore_total` no longer carries).
    pub lazy_faults: u64,
    /// Global virtual time this slot joined the pool.
    pub spawned_at: Nanos,
    /// A retired slot serves its queue dry but receives no new requests.
    pub retired: bool,
}

impl Slot {
    fn new(container: Container, spawned_at: Nanos) -> Slot {
        let ready_at = container.now();
        Slot {
            container,
            queue: AdmissionQueue::new(),
            resp_at: ready_at,
            ready_at,
            busy: Nanos::ZERO,
            restore_total: Nanos::ZERO,
            restore_hidden: Nanos::ZERO,
            pending_restore: Nanos::ZERO,
            prev_resp_at: Nanos::ZERO,
            served: 0,
            lazy_faults: 0,
            spawned_at,
            retired: false,
        }
    }

    /// True when the slot can start a request at `now`: its restore is
    /// complete (readiness event reached) and nothing is in flight.
    pub fn idle_at(&self, now: Nanos) -> bool {
        self.ready_at <= now
    }

    /// Load as a restore-*unaware* observer sees it: queued requests
    /// plus the one in flight. A slot that is mid-restore (response
    /// gone, restore running) looks idle from here — that blindness is
    /// exactly what [`RoutePolicy::RestoreAware`] fixes.
    ///
    /// [`RoutePolicy::RestoreAware`]: super::router::RoutePolicy::RestoreAware
    pub fn visible_load(&self, now: Nanos) -> usize {
        self.queue.len() + usize::from(self.resp_at > now)
    }

    /// Dispatches the head-of-queue request at `now` (which must be ≥
    /// `ready_at`). Advances this container's timeline through
    /// execution and off-path restore, and settles the restore-hiding
    /// accounting for the *previous* invocation.
    pub fn dispatch(&mut self, now: Nanos) -> Result<Option<Dispatched>, StrategyError> {
        if !self.idle_at(now) {
            return Ok(None);
        }
        let Some(pending) = self.queue.pop() else {
            return Ok(None);
        };
        // Settle the previous restore: the part of it that finished
        // before this request arrived hid in an idle gap; the rest
        // delayed this request.
        if !self.pending_restore.is_zero() {
            let hidden_end = pending.arrival.max(self.prev_resp_at).min(self.ready_at);
            self.restore_hidden += hidden_end - self.prev_resp_at;
            self.pending_restore = Nanos::ZERO;
        }
        self.container.kernel.clock.advance_to(now);
        let start = self.container.now();
        let req = Request::new(pending.id, &pending.principal, pending.input_kb);
        let out = self.container.invoke(&req)?;
        self.resp_at = out.response.completed_at;
        self.ready_at = out.ready_at;
        self.busy += out.invoker_latency + out.off_path;
        self.restore_total += out.off_path;
        self.pending_restore = out.off_path;
        self.prev_resp_at = self.resp_at;
        self.served += 1;
        self.lazy_faults += out.exec.faults.lazy;
        Ok(Some(Dispatched {
            sojourn: (start - pending.arrival) + out.invoker_latency,
            resp_at: self.resp_at,
            ready_at: self.ready_at,
            id: pending.id,
            payload_hash: pending.payload_hash,
            idempotent: pending.idempotent,
            output_kb: out.response.output_kb,
        }))
    }

    /// Settles trailing restore time at end of run: a restore nothing
    /// ever waited on is fully hidden.
    pub fn settle(&mut self) {
        self.restore_hidden += self.pending_restore;
        self.pending_restore = Nanos::ZERO;
    }

    /// Fault injection: the container dies `frac` of the way through
    /// executing the head-of-queue request. The request produces no
    /// response; the container's timeline is charged the partial
    /// execution plus a full re-initialization (its cold-start time)
    /// before it can admit anything again. Returns the killed request
    /// and the recovery-complete time, or `None` when the slot is not
    /// idle or has nothing queued (same preconditions as
    /// [`Slot::dispatch`]).
    pub fn crash(&mut self, now: Nanos, frac: f64) -> Option<(Pending, Nanos)> {
        if !self.idle_at(now) {
            return None;
        }
        let pending = self.queue.pop()?;
        // The previous restore completed before the crash; classify it
        // exactly as a normal dispatch would.
        if !self.pending_restore.is_zero() {
            let hidden_end = pending.arrival.max(self.prev_resp_at).min(self.ready_at);
            self.restore_hidden += hidden_end - self.prev_resp_at;
            self.pending_restore = Nanos::ZERO;
        }
        self.container.kernel.clock.advance_to(now);
        let nominal = Nanos::from_millis_f64(self.container.spec.base_invoker_ms);
        let partial = nominal.scale(frac.clamp(0.0, 1.0));
        let recovery = self.container.stats.init_time;
        self.container.kernel.charge(partial + recovery);
        let ready = self.container.now();
        self.busy += partial + recovery;
        self.resp_at = ready;
        self.prev_resp_at = ready;
        self.ready_at = ready;
        Some((pending, ready))
    }

    /// Fault injection: the off-path snapshot writeback of the dispatch
    /// that just completed aborts — the container must cold-start
    /// before admitting anything else. Charges the re-initialization on
    /// top of the (already charged) aborted restore and returns the new
    /// readiness time. The aborted restore counts as exposed (it never
    /// hid anything: the slot was down for the cold start anyway).
    pub fn fail_restore(&mut self) -> Nanos {
        let recovery = self.container.stats.init_time;
        self.container.kernel.charge(recovery);
        let ready = self.container.now();
        self.busy += recovery;
        self.pending_restore = Nanos::ZERO;
        self.ready_at = ready;
        ready
    }
}

/// Pool-level snapshot-memory figures (from the shared store).
#[derive(Clone, Copy, Debug)]
pub struct PoolMemory {
    /// Logical snapshot pages across all live container snapshots.
    pub logical_pages: u64,
    /// Unique frames resident in the shared store.
    pub unique_frames: u64,
    /// Deduplication ratio (logical pages per unique frame; 1.0 = no
    /// sharing or no store use).
    pub dedup_ratio: f64,
    /// Pages deduplicated through the store's content-hash index
    /// (identical content at another vpn / identical deltas across
    /// snapshots) — sharing the per-vpn base match alone would miss.
    pub hash_hits: u64,
    /// Bytes resident in the shared store plus every container's private
    /// reference table.
    pub resident_bytes: u64,
    /// `resident_bytes / pool size`.
    pub resident_bytes_per_container: f64,
}

/// A pool of containers serving one deployed function.
pub struct Pool {
    /// The deployed function.
    pub spec: FunctionSpec,
    /// Isolation strategy every container runs.
    pub kind: StrategyKind,
    gh: GroundhogConfig,
    /// Per-slot state. Retired slots stay (their stats matter); the
    /// router skips them.
    pub slots: Vec<Slot>,
    /// The pool-shared snapshot store every GH container interns its
    /// clean-state pages into.
    store: StoreHandle,
    /// Seed source for containers spawned after construction.
    spawn_rng: DetRng,
}

impl Pool {
    /// Cold-starts `size` containers of `spec` under `kind`, all sharing
    /// one snapshot store.
    ///
    /// Slot 0 uses `seed` directly — a pool of one is therefore
    /// timeline-identical to a single [`Container::cold_start`] with the
    /// same seed (the shared store charges eager-snapshot cost), which
    /// keeps the single-container open-loop semantics stable.
    pub fn build(
        spec: &FunctionSpec,
        kind: StrategyKind,
        gh: GroundhogConfig,
        size: usize,
        seed: u64,
    ) -> Result<Pool, StrategyError> {
        assert!(size > 0, "pool needs at least one container");
        let store = SnapshotStore::new_handle();
        let mut spawn_rng = DetRng::new(seed ^ 0x9001_5EED_F1EE_7000);
        let mut slots = Vec::with_capacity(size);
        {
            // One store lock for the whole build: every cold start interns
            // through the held guard instead of re-locking per container.
            let mut locked = store.lock().expect("store poisoned");
            for i in 0..size {
                let s = if i == 0 { seed } else { spawn_rng.next_u64() };
                let c = Container::cold_start_pooled(
                    spec,
                    kind,
                    gh.clone(),
                    s,
                    Some(store.clone()),
                    Some(&mut locked),
                )?;
                slots.push(Slot::new(c, Nanos::ZERO));
            }
        }
        Ok(Pool {
            spec: spec.clone(),
            kind,
            gh,
            slots,
            store,
            spawn_rng,
        })
    }

    /// The shared snapshot store.
    pub fn store(&self) -> &StoreHandle {
        &self.store
    }

    /// Pool-level snapshot-memory accounting: dedup ratio and resident
    /// bytes per container. For strategies without a manager snapshot
    /// (BASE, FORK, FAASM, FRESH) the store is empty and the ratio is
    /// 1.0.
    pub fn memory(&self) -> PoolMemory {
        let st = self.store.lock().expect("store poisoned");
        let table_bytes: u64 = self
            .slots
            .iter()
            .filter_map(|s| match &s.container.strategy {
                gh_isolation::Strategy::Gh(m) => m.snapshot().map(|sn| sn.memory_bytes()),
                _ => None,
            })
            .sum();
        let resident_bytes = st.resident_bytes() + table_bytes;
        let size = self.slots.len().max(1) as f64;
        PoolMemory {
            logical_pages: st.stats().logical_pages,
            unique_frames: st.live_frames() as u64,
            dedup_ratio: st.dedup_ratio(),
            hash_hits: st.stats().hash_hits,
            resident_bytes,
            resident_bytes_per_container: resident_bytes as f64 / size,
        }
    }

    /// Number of routable (non-retired) slots.
    pub fn active(&self) -> usize {
        self.slots.iter().filter(|s| !s.retired).count()
    }

    /// Total requests waiting across all admission queues.
    pub fn queued(&self) -> usize {
        self.slots.iter().map(|s| s.queue.len()).sum()
    }

    /// Cold-starts one more container at global time `now`; it becomes
    /// ready after its full Fig. 1 initialization. Returns the new
    /// slot's index and its readiness time.
    pub fn grow(&mut self, now: Nanos) -> Result<(usize, Nanos), StrategyError> {
        let seed = self.spawn_rng.next_u64();
        let c = {
            let mut locked = self.store.lock().expect("store poisoned");
            Container::cold_start_pooled(
                &self.spec,
                self.kind,
                self.gh.clone(),
                seed,
                Some(self.store.clone()),
                Some(&mut locked),
            )?
        };
        let init = c.stats.init_time;
        let mut slot = Slot::new(c, now);
        // The new container's timeline starts at the global present; its
        // init time has already been charged on its own clock.
        let ready = now + init;
        slot.container.kernel.clock.advance_to(ready);
        slot.resp_at = ready;
        slot.ready_at = ready;
        let idx = self.slots.len();
        self.slots.push(slot);
        Ok((idx, ready))
    }

    /// Marks a slot retired (it drains its queue, then idles forever).
    /// Returns false when the slot is already retired.
    pub fn retire(&mut self, idx: usize) -> bool {
        let slot = &mut self.slots[idx];
        if slot.retired {
            return false;
        }
        slot.retired = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::queue::Pending;
    use gh_functions::catalog::by_name;

    fn pool(kind: StrategyKind, size: usize) -> Pool {
        let spec = by_name("fannkuch (p)").unwrap();
        Pool::build(&spec, kind, GroundhogConfig::gh(), size, 42).unwrap()
    }

    fn enqueue(slot: &mut Slot, id: u64, at: Nanos) {
        slot.queue.push(Pending {
            id,
            principal: "alice".into(),
            input_kb: 1,
            arrival: at,
            payload_hash: 0,
            idempotent: false,
            attempt: 1,
        });
    }

    #[test]
    fn pool_of_one_matches_single_cold_start() {
        let spec = by_name("fannkuch (p)").unwrap();
        let p = pool(StrategyKind::Gh, 1);
        let lone =
            Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 42).unwrap();
        assert_eq!(p.slots[0].container.now(), lone.now(), "identical timeline");
    }

    #[test]
    fn dispatch_tracks_readiness_and_busy_time() {
        let mut p = pool(StrategyKind::Gh, 1);
        let t0 = p.slots[0].container.now();
        enqueue(&mut p.slots[0], 1, t0);
        let d = p.slots[0].dispatch(t0).unwrap().unwrap();
        assert!(d.resp_at > t0);
        assert!(
            d.ready_at > d.resp_at,
            "GH restore keeps the slot busy past the response"
        );
        assert_eq!(p.slots[0].ready_at, d.ready_at);
        assert!(p.slots[0].busy > Nanos::ZERO);
        assert!(p.slots[0].restore_total > Nanos::ZERO);
        assert_eq!(p.slots[0].served, 1);
        // Mid-restore the slot is not idle, but a restore-unaware
        // observer already sees it as free.
        let mid = d.resp_at + (d.ready_at - d.resp_at) / 2;
        assert!(!p.slots[0].idle_at(mid));
        assert_eq!(p.slots[0].visible_load(mid), 0);
    }

    #[test]
    fn dispatch_refuses_while_busy_or_empty() {
        let mut p = pool(StrategyKind::Gh, 1);
        let t0 = p.slots[0].container.now();
        assert!(p.slots[0].dispatch(t0).unwrap().is_none(), "empty queue");
        enqueue(&mut p.slots[0], 1, t0);
        let d = p.slots[0].dispatch(t0).unwrap().unwrap();
        enqueue(&mut p.slots[0], 2, t0);
        assert!(
            p.slots[0].dispatch(d.resp_at).unwrap().is_none(),
            "restoring"
        );
        assert!(
            p.slots[0].dispatch(d.ready_at).unwrap().is_some(),
            "clean again"
        );
    }

    #[test]
    fn crash_kills_request_and_charges_recovery() {
        let mut p = pool(StrategyKind::Gh, 1);
        let t0 = p.slots[0].container.now();
        enqueue(&mut p.slots[0], 1, t0);
        let (killed, ready) = p.slots[0].crash(t0, 0.5).unwrap();
        assert_eq!(killed.id, 1);
        assert_eq!(p.slots[0].served, 0, "a crashed attempt serves nothing");
        let init = p.slots[0].container.stats.init_time;
        assert!(
            ready >= t0 + init,
            "recovery re-pays the full cold-start init"
        );
        assert!(!p.slots[0].idle_at(ready - Nanos::from_nanos(1)));
        assert!(p.slots[0].idle_at(ready));
        // The recovered container serves normally afterwards.
        enqueue(&mut p.slots[0], 2, ready);
        let d = p.slots[0].dispatch(ready).unwrap().unwrap();
        assert_eq!(d.id, 2);
    }

    #[test]
    fn fail_restore_extends_readiness_by_init() {
        let mut p = pool(StrategyKind::Gh, 1);
        let t0 = p.slots[0].container.now();
        enqueue(&mut p.slots[0], 1, t0);
        let d = p.slots[0].dispatch(t0).unwrap().unwrap();
        let init = p.slots[0].container.stats.init_time;
        let ready = p.slots[0].fail_restore();
        assert_eq!(ready, d.ready_at + init);
        assert_eq!(p.slots[0].ready_at, ready);
    }

    #[test]
    fn restore_fully_hidden_when_next_arrival_is_late() {
        let mut p = pool(StrategyKind::Gh, 1);
        let t0 = p.slots[0].container.now();
        enqueue(&mut p.slots[0], 1, t0);
        let d = p.slots[0].dispatch(t0).unwrap().unwrap();
        // Next request arrives long after the restore completed.
        let late = d.ready_at + Nanos::from_millis(50);
        enqueue(&mut p.slots[0], 2, late);
        p.slots[0].dispatch(late).unwrap().unwrap();
        p.slots[0].settle();
        assert_eq!(
            p.slots[0].restore_hidden, p.slots[0].restore_total,
            "both restores hid in idle gaps"
        );
    }

    #[test]
    fn restore_exposed_when_request_waits_on_it() {
        let mut p = pool(StrategyKind::Gh, 1);
        let t0 = p.slots[0].container.now();
        enqueue(&mut p.slots[0], 1, t0);
        let d = p.slots[0].dispatch(t0).unwrap().unwrap();
        // Second request arrived while the first still executed: the whole
        // restore delays it.
        enqueue(&mut p.slots[0], 2, t0 + Nanos::from_micros(1));
        p.slots[0].dispatch(d.ready_at).unwrap().unwrap();
        p.slots[0].settle();
        let first_restore = d.ready_at - d.resp_at;
        assert_eq!(
            p.slots[0].restore_hidden,
            p.slots[0].restore_total - first_restore,
            "first restore fully exposed, trailing one hidden"
        );
    }

    #[test]
    fn grow_adds_container_after_cold_start_delay() {
        let mut p = pool(StrategyKind::Gh, 2);
        let now = Nanos::from_secs(10);
        let (idx, ready) = p.grow(now).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(p.slots.len(), 3);
        assert!(
            ready > now + Nanos::from_millis(500),
            "Fig. 1 init is 100s of ms"
        );
        assert!(!p.slots[idx].idle_at(now));
        assert!(p.slots[idx].idle_at(ready));
        assert_eq!(p.active(), 3);
    }

    #[test]
    fn retire_excludes_from_active() {
        let mut p = pool(StrategyKind::Base, 3);
        assert!(p.retire(1));
        assert!(!p.retire(1), "idempotent");
        assert_eq!(p.active(), 2);
    }

    #[test]
    fn pool_snapshots_dedup_in_shared_store() {
        let p = pool(StrategyKind::Gh, 4);
        let m = p.memory();
        let one_snapshot_bytes = p.slots[0]
            .container
            .stats
            .prepare
            .as_ref()
            .unwrap()
            .snapshot_pages
            .unwrap()
            * gh_mem::PAGE_SIZE;
        let per_container: u64 = p
            .slots
            .iter()
            .map(|s| {
                s.container
                    .stats
                    .prepare
                    .as_ref()
                    .unwrap()
                    .snapshot_pages
                    .unwrap()
            })
            .sum();
        assert_eq!(
            m.logical_pages, per_container,
            "every snapshot page accounted"
        );
        assert!(
            m.dedup_ratio > 3.5,
            "4 near-identical containers must share, got {:.2}",
            m.dedup_ratio
        );
        assert!(
            m.resident_bytes < one_snapshot_bytes * 3 / 2,
            "pool of 4 holds {} B vs one snapshot {} B",
            m.resident_bytes,
            one_snapshot_bytes
        );
        assert!(m.resident_bytes_per_container < one_snapshot_bytes as f64 / 2.0);
    }

    #[test]
    fn non_gh_pool_has_empty_store() {
        let p = pool(StrategyKind::Base, 3);
        let m = p.memory();
        assert_eq!(m.unique_frames, 0);
        assert_eq!(m.dedup_ratio, 1.0);
        assert_eq!(m.resident_bytes, 0);
    }

    #[test]
    fn grown_containers_join_the_shared_store() {
        let mut p = pool(StrategyKind::Gh, 2);
        let before = p.memory();
        p.grow(Nanos::from_secs(1)).unwrap();
        let after = p.memory();
        assert!(after.logical_pages > before.logical_pages);
        assert!(
            after.unique_frames < before.unique_frames + before.unique_frames / 4,
            "the grown container dedups against the base: {} vs {}",
            after.unique_frames,
            before.unique_frames
        );
    }
}
