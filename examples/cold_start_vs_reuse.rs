//! §2's argument, measured: the trivial isolation solution (a fresh
//! container per request) costs hundreds of milliseconds per request;
//! Groundhog provides the same isolation at container-reuse speeds.
//!
//! ```text
//! cargo run --release --example cold_start_vs_reuse
//! ```

use groundhog::core::GroundhogConfig;
use groundhog::faas::{Container, Request};
use groundhog::functions::catalog;
use groundhog::isolation::StrategyKind;
use groundhog::sim::Nanos;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = catalog::by_name("get-time (p)").ok_or("not in catalog")?;
    println!(
        "function: {} (baseline invoker latency ≈ {:.1}ms)\n",
        spec.name, spec.base_invoker_ms
    );

    // Groundhog: one warm container, restore between requests.
    let mut gh = Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 1)?;
    let mut gh_total = Nanos::ZERO;
    let n = 6u64;
    for i in 0..n {
        let out = gh.invoke(&Request::new(i + 1, "caller", 1))?;
        gh_total += out.invoker_latency;
    }
    let gh_mean = gh_total / n;

    // The trivial solution: cold-start a fresh container for every request.
    let mut fresh_total = Nanos::ZERO;
    for i in 0..n {
        let mut c =
            Container::cold_start(&spec, StrategyKind::Fresh, GroundhogConfig::gh(), 100 + i)?;
        // The client-visible latency includes the whole cold start.
        let out = c.invoke(&Request::new(i + 1, "caller", 1))?;
        fresh_total += c.stats.init_time + out.invoker_latency;
    }
    let fresh_mean = fresh_total / n;

    println!("isolated request latency, mean over {n} requests:");
    println!("  Groundhog (container reuse + restore): {gh_mean}");
    println!("  fresh container per request (cold start): {fresh_mean}");
    let factor = fresh_mean.as_nanos() as f64 / gh_mean.as_nanos() as f64;
    println!("\ncold-start isolation is {factor:.0}x slower for this function (§2).");
    assert!(factor > 20.0);
    Ok(())
}
