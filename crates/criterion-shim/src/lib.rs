//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, vendored so the workspace builds and benches run without
//! network access to crates.io.
//!
//! It implements the subset of the criterion 0.5 API this workspace's
//! benches use — `criterion_group!` / `criterion_main!`, benchmark
//! groups, `bench_with_input`, `Bencher::iter` / `iter_with_setup` —
//! with simple wall-clock timing (median of `sample_size` samples).
//! Swap the path dependency for the real crate to get criterion's full
//! statistics, HTML reports and regression detection.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_samples(10, &mut f);
        println!("{:<40} {}", id.into(), report);
        self
    }
}

/// A named benchmark identifier (`criterion::BenchmarkId`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter alone.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId {
            label: p.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<P: Display>(name: impl Into<String>, p: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), p),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_samples(self.sample_size, &mut |b| f(b, input));
        println!("{:<28} {:<24} {}", self.name, id.label, report);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let report = run_samples(self.sample_size, &mut f);
        println!("{:<28} {:<24} {}", self.name, id.into(), report);
        self
    }

    /// Ends the group (printing is incremental; nothing left to do).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark closure.
fn run_samples<F: FnMut(&mut Bencher)>(samples: usize, f: &mut F) -> String {
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed / b.iters as u32);
        }
    }
    if per_iter.is_empty() {
        return "no samples".to_string();
    }
    per_iter.sort();
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    format!("median {median:>10.2?}   [min {min:.2?}, max {max:.2?}]   ({samples} samples)")
}

/// The per-sample measurement context (`criterion::Bencher`).
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

/// Iterations per timing sample. The real criterion calibrates this;
/// the shim uses a fixed small count since the simulated operations it
/// times are macroscopic (µs–ms each).
const ITERS_PER_SAMPLE: u64 = 3;

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        for _ in 0..ITERS_PER_SAMPLE {
            black_box(routine());
        }
        self.elapsed += t0.elapsed();
        self.iters += ITERS_PER_SAMPLE;
    }

    /// Times `routine` on fresh inputs built (untimed) by `setup`.
    pub fn iter_with_setup<I, R, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..ITERS_PER_SAMPLE {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(b.iters, ITERS_PER_SAMPLE);
        assert_eq!(n, ITERS_PER_SAMPLE);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("shim-test");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
                b.iter(|| x * 2);
                ran += 1;
            });
            g.finish();
        }
        assert_eq!(ran, 2);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("f", "x").to_string(), "f/x");
    }
}
