//! Deconstructing one restore, Fig. 8-style: where do the milliseconds
//! go when Groundhog rolls a Node.js function back?
//!
//! ```text
//! cargo run --release --example restore_breakdown
//! ```

use groundhog::core::breakdown::ALL_PHASES;
use groundhog::core::GroundhogConfig;
use groundhog::faas::{Container, Request};
use groundhog::functions::catalog;
use groundhog::isolation::StrategyKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = catalog::by_name("img-resize (n)").ok_or("not in catalog")?;
    let mut c = Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 3)?;
    println!(
        "function: {} ({} mapped Kpages)\n",
        spec.name, spec.total_kpages
    );

    // A couple of requests; show the second restore's anatomy.
    c.invoke(&Request::new(1, "alice", spec.input_kb))?;
    c.invoke(&Request::new(2, "bob", spec.input_kb))?;
    let post = c.stats.last_post.as_ref().ok_or("request concluded")?;
    let report = post
        .restore
        .as_ref()
        .ok_or("GH restores after each request")?;

    println!(
        "restore: {} total — {} dirty pages found, {} restored in {} runs, \
         {} newly paged evicted, {} stack pages zeroed, {} syscalls injected\n",
        report.total,
        report.dirty_pages,
        report.pages_restored,
        report.runs,
        report.newly_paged,
        report.stack_zeroed,
        report.syscalls_injected,
    );
    println!("{:<26} {:>12} {:>7}", "phase", "time", "share");
    let fracs = report.breakdown.fractions();
    for phase in ALL_PHASES {
        let t = report.breakdown.get(phase);
        if t.is_zero() {
            continue;
        }
        println!(
            "{:<26} {:>12} {:>6.1}%",
            phase.label(),
            t.to_string(),
            fracs[phase as usize] * 100.0,
        );
    }
    println!(
        "\n(paper Fig. 8: img-resize(n) restore ≈ 61.8ms, dominated by memory \
         restoration and pagemap scanning)"
    );
    Ok(())
}
