//! Dynamic workflow DAGs with crash-exact recovery.
//!
//! [`super::run_workflows`] runs static chains; real FaaS compositions
//! branch. A [`DagSpec`] adds the three shapes that stress recovery
//! (AFT's generalization from chains to arbitrary DAGs, PAPERS.md):
//!
//! - **fan-out** ([`DagOp::FanOut`]): one hop's output spawns `width`
//!   parallel branch hops, each committing under its own hop path;
//! - **fan-in** ([`DagOp::Join`]): a join hop reads every branch's
//!   *durable* commit back from the KV and folds them with the
//!   deterministic [`join_merge`] — recovery re-derives the join from
//!   committed branch state, so a death *between the last branch
//!   commit and the join commit* retries into exactly the crash-free
//!   value;
//! - **conditional edges** ([`DagOp::Cond`]): the hop's function is
//!   chosen by a pure predicate (parity) of the upstream output, so
//!   replays take the identical edge.
//!
//! Every hop commits exactly once to the shared [`VersionedKv`] under
//! the idempotent `(workflow, hop_path)` key ([`hop_path`] packs
//! `(dag node, branch)` into the path), and reads shared aggregate
//! state through the workflow's pinned snapshot. Hop values are pure
//! functions of `(workflow, hop_path, upstream value, pinned reads)`,
//! which is the whole crash-equivalence argument: any crash/retry
//! interleaving with zero abandonment converges to the crash-free
//! final KV state, per-workflow outputs, version count, *and* commit
//! order ([`DagResult::replay_hash`]) — pinned by
//! `tests/dag_oracle.rs` and the hand-rolled property tests in
//! `tests/dag_prop.rs`.

use gh_functions::FunctionSpec;
use gh_isolation::StrategyError;
use gh_mem::RequestId;
use gh_sim::DetRng;
use groundhog_core::GroundhogConfig;

use crate::container::Container;
use crate::fault::{FaultPlan, FaultStats};
use crate::request::Request;

use super::{mix, VersionedKv, WorkflowConfig, AGG_KEY};

/// One DAG node's operation. `func` indices point into the catalog
/// slice passed to [`run_dag_workflows`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DagOp {
    /// One hop of `func`.
    Task {
        /// Catalog index of the hop's function.
        func: usize,
    },
    /// `width` parallel branch hops of `func`, all fed the upstream
    /// value; each branch commits under its own hop path. Consumable
    /// only by a [`DagOp::Join`].
    FanOut {
        /// Catalog index of the branch hops' function.
        func: usize,
        /// Parallel branches spawned (≥ 2).
        width: u32,
    },
    /// Fan-in: reads every branch commit of its (fan-out) input node
    /// from the KV, folds them with [`join_merge`], and runs one hop of
    /// `func` on the merged value.
    Join {
        /// Catalog index of the join hop's function.
        func: usize,
    },
    /// Conditional edge: runs `then_func` when the upstream value is
    /// even, `else_func` when odd — a pure function of hop output, so
    /// retries and replays take the same edge.
    Cond {
        /// Taken on even upstream values.
        then_func: usize,
        /// Taken on odd upstream values.
        else_func: usize,
    },
}

/// One node of a [`DagSpec`]: an operation plus the index of the node
/// feeding it. Edges always point forward (`input <` own index), so
/// index order is a topological order; node 0 reads the workflow input
/// and its `input` field is ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DagNode {
    /// The node's operation.
    pub op: DagOp,
    /// Index of the upstream node whose output feeds this one.
    pub input: usize,
}

/// A dynamic workflow DAG. The last node is the sink: its commit lands
/// on the shared [`AGG_KEY`] and its value is the workflow's output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagSpec {
    /// Nodes in topological (index) order.
    pub nodes: Vec<DagNode>,
}

impl DagSpec {
    /// A linear chain of `Task` nodes over `funcs` — the degenerate
    /// DAG, useful as a baseline.
    pub fn chain(funcs: &[usize]) -> DagSpec {
        DagSpec {
            nodes: funcs
                .iter()
                .enumerate()
                .map(|(i, &func)| DagNode {
                    op: DagOp::Task { func },
                    input: i.saturating_sub(1),
                })
                .collect(),
        }
    }

    /// Panics unless the spec is well-formed: edges point forward,
    /// joins consume fan-outs, fan-outs are consumed *only* by joins
    /// (and by at least one), the sink has a scalar output, and every
    /// `func` index is inside a `funcs`-entry catalog.
    pub fn validate(&self, funcs: usize) {
        assert!(!self.nodes.is_empty(), "a DAG needs at least one node");
        let check = |f: usize| assert!(f < funcs, "func index {f} outside catalog of {funcs}");
        let mut consumed = vec![false; self.nodes.len()];
        for (n, node) in self.nodes.iter().enumerate() {
            assert!(
                n == 0 || node.input < n,
                "node {n}: edges must point forward (input {})",
                node.input
            );
            let input_is_fanout =
                n > 0 && matches!(self.nodes[node.input].op, DagOp::FanOut { .. });
            if n > 0 {
                consumed[node.input] = true;
            }
            match node.op {
                DagOp::Task { func } => {
                    check(func);
                    assert!(
                        !input_is_fanout,
                        "node {n}: only a Join may consume a FanOut"
                    );
                }
                DagOp::FanOut { func, width } => {
                    check(func);
                    assert!(width >= 2, "node {n}: fan-out width must be ≥ 2");
                    assert!(
                        !input_is_fanout,
                        "node {n}: only a Join may consume a FanOut"
                    );
                    assert!(
                        n + 1 < self.nodes.len(),
                        "node {n}: the sink must have a scalar output, not a fan-out"
                    );
                }
                DagOp::Join { func } => {
                    check(func);
                    assert!(
                        n > 0 && input_is_fanout,
                        "node {n}: a Join must consume a FanOut"
                    );
                }
                DagOp::Cond {
                    then_func,
                    else_func,
                } => {
                    check(then_func);
                    check(else_func);
                    assert!(
                        !input_is_fanout,
                        "node {n}: only a Join may consume a FanOut"
                    );
                }
            }
        }
        for (n, node) in self.nodes.iter().enumerate() {
            if matches!(node.op, DagOp::FanOut { .. }) {
                assert!(consumed[n], "node {n}: a FanOut needs a Join consumer");
            }
        }
    }

    /// Parallel branch hops of node `n` (1 for everything but fan-out).
    pub fn width_of(&self, n: usize) -> u32 {
        match self.nodes[n].op {
            DagOp::FanOut { width, .. } => width,
            _ => 1,
        }
    }

    /// The catalog function node `n` runs given its upstream value —
    /// the conditional-edge resolution point (pure in `upstream`).
    pub fn hop_func(&self, n: usize, upstream: u64) -> usize {
        match self.nodes[n].op {
            DagOp::Task { func } | DagOp::FanOut { func, .. } | DagOp::Join { func } => func,
            DagOp::Cond {
                then_func,
                else_func,
            } => {
                if upstream.is_multiple_of(2) {
                    then_func
                } else {
                    else_func
                }
            }
        }
    }

    /// Total hops one workflow instance executes (fan-outs count
    /// `width`) — the crash-free commit count per workflow.
    pub fn hops(&self) -> u64 {
        (0..self.nodes.len()).map(|n| self.width_of(n) as u64).sum()
    }
}

/// Packs `(dag node, branch)` into the idempotence key's hop path:
/// node index in the high 32 bits, branch in the low. Chains keep
/// using the bare hop index (their node ids stay below 2³²·1), so the
/// two runners share one [`VersionedKv::commit`] keyspace shape.
pub fn hop_path(node: usize, branch: u32) -> u64 {
    ((node as u64) << 32) | branch as u64
}

/// A hop's committed value: a pure function of
/// `(workflow, hop path, upstream value, pinned aggregate read)` —
/// retries and cross-node re-executions re-derive it bit for bit.
pub(crate) fn hop_value(w: u64, path: u64, input: u64, agg_seen: u64) -> u64 {
    mix(input ^ mix((w << 8) ^ mix(path)) ^ agg_seen)
}

/// Per-`(workflow, hop path)` scratch key for non-sink commits (odd,
/// so it never collides with [`AGG_KEY`]).
pub(crate) fn dag_key(w: u64, path: u64) -> u64 {
    mix(0x00DA_6000 ^ (w << 1) ^ mix(path)) | 1
}

/// Deterministic fan-in merge: folds branch outputs in branch order.
/// Recovery re-reads the identical committed branch values, so the
/// merge is replay-stable.
pub fn join_merge(branch_outputs: &[u64]) -> u64 {
    let mut acc = 0x10_1AA7u64;
    for (b, &v) in branch_outputs.iter().enumerate() {
        acc = mix(acc ^ v ^ (b as u64 + 1));
    }
    acc
}

/// Folds one applied commit into the replay-order hash.
pub(crate) fn fold_replay(h: u64, w: u64, path: u64, value: u64) -> u64 {
    mix(h ^ mix(w) ^ mix(path)).wrapping_add(mix(value))
}

/// What a DAG run produced. Field-for-field comparable across faulty
/// and crash-free runs (the crash-equivalence oracle's contract).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagResult {
    /// Workflow instances started.
    pub workflows: u64,
    /// Instances that ran every hop to completion.
    pub completed: u64,
    /// Sink output per workflow (`None` for abandoned instances).
    pub outputs: Vec<Option<u64>>,
    /// Fingerprint of the final KV state ([`VersionedKv::fingerprint`]).
    pub kv_fingerprint: u64,
    /// Total KV versions applied — equality with the crash-free run is
    /// the zero-double-applied-joins assert.
    pub kv_versions: u64,
    /// Re-commits absorbed by idempotence.
    pub duplicates_suppressed: u64,
    /// Hops whose response carried request-tainted pages onward (zero
    /// under `Gh`).
    pub tainted_handoffs: u64,
    /// Container invocations run, retries included — the denominator
    /// of goodput-per-hop under faults.
    pub hops_executed: u64,
    /// Order-sensitive hash over applied commits: a pure function of
    /// `(seed, spec)`, unchanged by crash/retry interleavings with zero
    /// abandonment (topological replay order is deterministic).
    pub replay_hash: u64,
    /// Fault accounting for the run.
    pub faults: FaultStats,
}

/// Shared mutable state of one DAG run, threaded through every hop.
struct RunState {
    kv: VersionedKv,
    faults: FaultStats,
    plan: Option<FaultPlan>,
    invoke_seq: u64,
    replay_hash: u64,
    hops_executed: u64,
    tainted_handoffs: u64,
}

impl RunState {
    /// Runs one hop to commit or abandonment: invoke, seeded
    /// crash/retry loop, idempotent commit. Returns whether the hop
    /// (and so the workflow) survived.
    #[allow(clippy::too_many_arguments)]
    fn exec_hop(
        &mut self,
        c: &mut Container,
        spec: &FunctionSpec,
        w: u64,
        path: u64,
        key: u64,
        value: u64,
        sink: bool,
    ) -> Result<bool, StrategyError> {
        // Fault draws key on a *stable* per-(workflow, path) id so the
        // schedule does not depend on how many attempts ran before.
        let fault_id = mix(w ^ 0xDA6F_A017) ^ mix(path);
        let mut attempt = 1u32;
        loop {
            let rid = self.invoke_seq;
            self.invoke_seq += 1;
            self.hops_executed += 1;
            let principal = format!("wf-{w}");
            let req = Request::new(rid, &principal, spec.input_kb);
            c.invoke(&req)?;
            let tainted = {
                let proc = c.kernel.process(c.fproc.pid).expect("function process");
                !proc
                    .mem
                    .tainted_pages(RequestId(rid), c.kernel.frames())
                    .is_empty()
            };
            if let Some(pl) = self.plan {
                if pl.death(fault_id, attempt).is_some() {
                    self.faults.deaths += 1;
                    if pl.death_after_commit(fault_id, attempt) {
                        // Commit raced ahead of the crash: state
                        // applied, response lost. The retry re-derives
                        // `value` and its re-commit is absorbed.
                        self.faults.duplicates += 1;
                        self.commit(w, path, key, value);
                    }
                    if attempt < pl.max_attempts() {
                        self.faults.retries += 1;
                        attempt += 1;
                        continue;
                    }
                    self.faults.abandoned += 1;
                    return Ok(false);
                }
            }
            if tainted && !sink {
                self.tainted_handoffs += 1;
            }
            self.commit(w, path, key, value);
            return Ok(true);
        }
    }

    /// Idempotent commit + replay-order fold (only applied commits
    /// advance the replay hash, so retries never perturb it).
    fn commit(&mut self, w: u64, path: u64, key: u64, value: u64) {
        if self.kv.commit(w, path, key, value) {
            self.replay_hash = fold_replay(self.replay_hash, w, path, value);
        }
    }
}

/// Runs `cfg.workflows` instances of `spec` over real containers (one
/// warm container per catalog entry in `funcs`), committing hop-by-hop
/// to a shared [`VersionedKv`]. Fan-out branches execute as separate
/// hops under distinct hop paths; joins re-read the durable branch
/// commits. See the module docs for the recovery contract.
pub fn run_dag_workflows(
    spec: &DagSpec,
    funcs: &[FunctionSpec],
    gh: GroundhogConfig,
    cfg: &WorkflowConfig,
) -> Result<DagResult, StrategyError> {
    spec.validate(funcs.len());
    let mut containers: Vec<Container> = Vec::with_capacity(funcs.len());
    for (f, fspec) in funcs.iter().enumerate() {
        containers.push(Container::cold_start(
            fspec,
            cfg.kind,
            gh.clone(),
            mix(cfg.seed ^ 0x3077_F10E ^ f as u64),
        )?);
    }
    let mut st = RunState {
        kv: VersionedKv::new(),
        faults: FaultStats::default(),
        plan: cfg.faults.filter(|c| c.is_active()).map(FaultPlan::new),
        invoke_seq: 1,
        replay_hash: 0,
        hops_executed: 0,
        tainted_handoffs: 0,
    };
    let mut outputs: Vec<Option<u64>> = Vec::with_capacity(cfg.workflows as usize);
    let mut completed = 0u64;
    for w in 0..cfg.workflows {
        let pinned = st.kv.snapshot();
        let input0 = mix(cfg.seed ^ 0x00DA_607A ^ w);
        let mut out = vec![0u64; spec.nodes.len()];
        let mut alive = true;
        for (n, node) in spec.nodes.iter().enumerate() {
            let upstream = if n == 0 { input0 } else { out[node.input] };
            let sink = n + 1 == spec.nodes.len();
            match node.op {
                DagOp::FanOut { .. } => {
                    for b in 0..spec.width_of(n) {
                        let path = hop_path(n, b);
                        let func = spec.hop_func(n, upstream);
                        let agg_seen = st.kv.read_at(AGG_KEY, pinned).unwrap_or(0);
                        let value = hop_value(w, path, upstream, agg_seen);
                        alive = st.exec_hop(
                            &mut containers[func],
                            &funcs[func],
                            w,
                            path,
                            dag_key(w, path),
                            value,
                            false,
                        )?;
                        if !alive {
                            break;
                        }
                    }
                    // Consumers are joins; they read the branches back
                    // from the KV, not from this placeholder.
                    out[n] = upstream;
                }
                DagOp::Join { .. } => {
                    let src = node.input;
                    let branches: Vec<u64> = (0..spec.width_of(src))
                        .map(|b| {
                            st.kv
                                .latest(dag_key(w, hop_path(src, b)))
                                .expect("branch commits are durable before the join runs")
                        })
                        .collect();
                    let merged = join_merge(&branches);
                    match run_scalar_hop(
                        &mut st,
                        spec,
                        funcs,
                        &mut containers,
                        w,
                        n,
                        merged,
                        sink,
                        pinned,
                    )? {
                        Some(v) => out[n] = v,
                        None => alive = false,
                    }
                }
                DagOp::Task { .. } | DagOp::Cond { .. } => {
                    match run_scalar_hop(
                        &mut st,
                        spec,
                        funcs,
                        &mut containers,
                        w,
                        n,
                        upstream,
                        sink,
                        pinned,
                    )? {
                        Some(v) => out[n] = v,
                        None => alive = false,
                    }
                }
            }
            if !alive {
                break;
            }
        }
        if alive {
            completed += 1;
            outputs.push(Some(out[spec.nodes.len() - 1]));
        } else {
            outputs.push(None);
        }
    }
    Ok(DagResult {
        workflows: cfg.workflows,
        completed,
        outputs,
        kv_fingerprint: st.kv.fingerprint(),
        kv_versions: st.kv.total_versions(),
        duplicates_suppressed: st.kv.duplicates_suppressed,
        tainted_handoffs: st.tainted_handoffs,
        hops_executed: st.hops_executed,
        replay_hash: st.replay_hash,
        faults: st.faults,
    })
}

/// Executes one scalar hop (task / cond / join-merge hop) of node `n`.
/// Returns the committed value, or `None` when the hop exhausted its
/// attempts and the workflow is abandoned.
#[allow(clippy::too_many_arguments)]
fn run_scalar_hop(
    st: &mut RunState,
    spec: &DagSpec,
    funcs: &[FunctionSpec],
    containers: &mut [Container],
    w: u64,
    n: usize,
    input: u64,
    sink: bool,
    pinned: u64,
) -> Result<Option<u64>, StrategyError> {
    let path = hop_path(n, 0);
    let func = spec.hop_func(n, input);
    let agg_seen = st.kv.read_at(AGG_KEY, pinned).unwrap_or(0);
    let value = hop_value(w, path, input, agg_seen);
    let key = if sink { AGG_KEY } else { dag_key(w, path) };
    let alive = st.exec_hop(
        &mut containers[func],
        &funcs[func],
        w,
        path,
        key,
        value,
        sink,
    )?;
    Ok(alive.then_some(value))
}

/// Draws a random well-formed DAG over a `funcs`-entry catalog: a
/// source task, 1–4 segments (task, fan-out/join pair of width
/// `2..=max_width`, or conditional), each fed by a random earlier
/// scalar-output node (so shapes genuinely branch and re-join), and a
/// task sink. A pure function of `(seed, funcs, max_width)` — the
/// property tests replay it — and always [`DagSpec::validate`]-clean.
pub fn random_dag_spec(seed: u64, funcs: usize, max_width: u32) -> DagSpec {
    assert!(funcs > 0, "need at least one catalog function");
    let max_width = max_width.max(2);
    let mut rng = DetRng::new(seed ^ 0x00DA_65ED);
    let pick = move |rng: &mut DetRng| rng.next_below(funcs as u64) as usize;
    let mut nodes = vec![DagNode {
        op: DagOp::Task {
            func: pick(&mut rng),
        },
        input: 0,
    }];
    // Nodes whose output is a scalar (anything but a fan-out).
    let mut scalars: Vec<usize> = vec![0];
    for _ in 0..1 + rng.next_below(4) {
        let input = scalars[rng.next_below(scalars.len() as u64) as usize];
        match rng.next_below(3) {
            0 => {
                nodes.push(DagNode {
                    op: DagOp::Task {
                        func: pick(&mut rng),
                    },
                    input,
                });
                scalars.push(nodes.len() - 1);
            }
            1 => {
                let width = 2 + rng.next_below(max_width as u64 - 1) as u32;
                nodes.push(DagNode {
                    op: DagOp::FanOut {
                        func: pick(&mut rng),
                        width,
                    },
                    input,
                });
                let fan_out = nodes.len() - 1;
                nodes.push(DagNode {
                    op: DagOp::Join {
                        func: pick(&mut rng),
                    },
                    input: fan_out,
                });
                scalars.push(nodes.len() - 1);
            }
            _ => {
                nodes.push(DagNode {
                    op: DagOp::Cond {
                        then_func: pick(&mut rng),
                        else_func: pick(&mut rng),
                    },
                    input,
                });
                scalars.push(nodes.len() - 1);
            }
        }
    }
    let input = *scalars.last().expect("source is always a scalar");
    nodes.push(DagNode {
        op: DagOp::Task {
            func: pick(&mut rng),
        },
        input,
    });
    DagSpec { nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, RetryPolicy};
    use gh_functions::catalog::by_name;
    use gh_isolation::StrategyKind;

    fn funcs() -> Vec<FunctionSpec> {
        ["get-time (n)", "float (p)"]
            .iter()
            .map(|n| by_name(n).unwrap())
            .collect()
    }

    /// Task → FanOut(3) → Join → Cond → Task sink over 2 functions.
    fn diamond() -> DagSpec {
        DagSpec {
            nodes: vec![
                DagNode {
                    op: DagOp::Task { func: 0 },
                    input: 0,
                },
                DagNode {
                    op: DagOp::FanOut { func: 1, width: 3 },
                    input: 0,
                },
                DagNode {
                    op: DagOp::Join { func: 0 },
                    input: 1,
                },
                DagNode {
                    op: DagOp::Cond {
                        then_func: 0,
                        else_func: 1,
                    },
                    input: 2,
                },
                DagNode {
                    op: DagOp::Task { func: 1 },
                    input: 3,
                },
            ],
        }
    }

    #[test]
    fn hop_path_packs_node_and_branch() {
        assert_eq!(hop_path(0, 0), 0);
        assert_eq!(hop_path(1, 0), 1 << 32);
        assert_eq!(hop_path(1, 2), (1 << 32) | 2);
        // Distinct from every chain hop index (those stay below 2³²).
        assert!(hop_path(1, 0) > u32::MAX as u64);
    }

    #[test]
    #[should_panic(expected = "a Join must consume a FanOut")]
    fn join_without_a_fanout_is_rejected() {
        DagSpec {
            nodes: vec![
                DagNode {
                    op: DagOp::Task { func: 0 },
                    input: 0,
                },
                DagNode {
                    op: DagOp::Join { func: 0 },
                    input: 0,
                },
            ],
        }
        .validate(2);
    }

    #[test]
    #[should_panic(expected = "only a Join may consume a FanOut")]
    fn task_consuming_a_fanout_is_rejected() {
        DagSpec {
            nodes: vec![
                DagNode {
                    op: DagOp::Task { func: 0 },
                    input: 0,
                },
                DagNode {
                    op: DagOp::FanOut { func: 0, width: 2 },
                    input: 0,
                },
                DagNode {
                    op: DagOp::Task { func: 0 },
                    input: 1,
                },
            ],
        }
        .validate(2);
    }

    #[test]
    #[should_panic(expected = "a FanOut needs a Join consumer")]
    fn unconsumed_fanout_is_rejected() {
        DagSpec {
            nodes: vec![
                DagNode {
                    op: DagOp::Task { func: 0 },
                    input: 0,
                },
                DagNode {
                    op: DagOp::FanOut { func: 0, width: 2 },
                    input: 0,
                },
                DagNode {
                    op: DagOp::Task { func: 0 },
                    input: 0,
                },
            ],
        }
        .validate(2);
    }

    #[test]
    fn fan_out_join_completes_and_commits_once_per_hop() {
        let spec = diamond();
        spec.validate(2);
        assert_eq!(spec.hops(), 7, "1 + 3 branches + join + cond + sink");
        let cfg = WorkflowConfig::new(10, StrategyKind::Gh, 0xDA6);
        let r = run_dag_workflows(&spec, &funcs(), GroundhogConfig::gh(), &cfg).unwrap();
        assert_eq!(r.completed, 10);
        assert!(r.outputs.iter().all(|o| o.is_some()));
        assert_eq!(r.kv_versions, 10 * 7, "one commit per (workflow, hop path)");
        assert_eq!(r.duplicates_suppressed, 0);
        assert_eq!(r.hops_executed, 10 * 7, "no retries on a clean run");
        assert_eq!(r.tainted_handoffs, 0, "Gh wipes taint between hops");
        assert!(r.faults.is_empty());
        let again = run_dag_workflows(&spec, &funcs(), GroundhogConfig::gh(), &cfg).unwrap();
        assert_eq!(r, again, "the run is a pure function of (seed, spec)");
    }

    #[test]
    fn conditional_edges_are_pure_in_the_upstream_value() {
        let spec = diamond();
        assert_eq!(spec.hop_func(3, 4), 0, "even takes the then edge");
        assert_eq!(spec.hop_func(3, 5), 1, "odd takes the else edge");
        // Across many workflows both edges are actually exercised.
        let cfg = WorkflowConfig::new(16, StrategyKind::Gh, 0xC0ED);
        let r = run_dag_workflows(&spec, &funcs(), GroundhogConfig::gh(), &cfg).unwrap();
        assert_eq!(r.completed, 16);
    }

    #[test]
    fn crashes_converge_to_the_crash_free_state() {
        let spec = diamond();
        let clean_cfg = WorkflowConfig::new(12, StrategyKind::Gh, 0xFADE);
        let clean = run_dag_workflows(&spec, &funcs(), GroundhogConfig::gh(), &clean_cfg).unwrap();
        let mut fc = FaultConfig::deaths(0xD1ED, 0.12);
        fc.retry = RetryPolicy {
            max_attempts: 8,
            ..RetryPolicy::bounded()
        };
        let faulty_cfg = clean_cfg.clone().with_faults(fc);
        let faulty =
            run_dag_workflows(&spec, &funcs(), GroundhogConfig::gh(), &faulty_cfg).unwrap();
        assert!(faulty.faults.deaths > 0, "faults actually fired");
        assert_eq!(faulty.faults.abandoned, 0, "8 attempts never exhaust");
        assert_eq!(faulty.completed, 12);
        assert_eq!(faulty.outputs, clean.outputs);
        assert_eq!(faulty.kv_fingerprint, clean.kv_fingerprint);
        assert_eq!(faulty.kv_versions, clean.kv_versions, "no double-applies");
        assert_eq!(
            faulty.replay_hash, clean.replay_hash,
            "commit order survives crash/retry interleaving"
        );
        assert_eq!(faulty.duplicates_suppressed, faulty.faults.duplicates);
        assert!(
            faulty.hops_executed > clean.hops_executed,
            "retries cost hops"
        );
    }

    #[test]
    fn death_between_last_branch_commit_and_join_commit_is_absorbed() {
        // KV-level pin of the ISSUE's nastiest interleaving: all
        // branches committed, the join's first commit applied, the
        // response lost; the retried join re-reads the same durable
        // branches, re-derives the same merge, and its re-commit is
        // suppressed — never double-applied.
        let mut kv = VersionedKv::new();
        let w = 3u64;
        for b in 0..3 {
            let path = hop_path(1, b);
            assert!(kv.commit(w, path, dag_key(w, path), 100 + b as u64));
        }
        let branches: Vec<u64> = (0..3)
            .map(|b| kv.latest(dag_key(w, hop_path(1, b))).unwrap())
            .collect();
        let join_path = hop_path(2, 0);
        let v1 = hop_value(w, join_path, join_merge(&branches), 0);
        assert!(kv.commit(w, join_path, AGG_KEY, v1), "first join commit");
        let before = kv.total_versions();
        // Crash between commit and response; retry re-derives:
        let branches2: Vec<u64> = (0..3)
            .map(|b| kv.latest(dag_key(w, hop_path(1, b))).unwrap())
            .collect();
        let v2 = hop_value(w, join_path, join_merge(&branches2), 0);
        assert_eq!(v1, v2, "recovery re-derives the identical join value");
        assert!(!kv.commit(w, join_path, AGG_KEY, v2), "re-commit absorbed");
        assert_eq!(kv.total_versions(), before, "zero double-applied joins");
        assert_eq!(kv.duplicates_suppressed, 1);
    }

    #[test]
    fn random_specs_are_valid_and_deterministic() {
        let mut saw_fanout = false;
        let mut saw_cond = false;
        for seed in 0..40u64 {
            let spec = random_dag_spec(seed, 8, 6);
            spec.validate(8);
            assert_eq!(spec, random_dag_spec(seed, 8, 6), "seed-pure");
            saw_fanout |= spec
                .nodes
                .iter()
                .any(|n| matches!(n.op, DagOp::FanOut { .. }));
            saw_cond |= spec
                .nodes
                .iter()
                .any(|n| matches!(n.op, DagOp::Cond { .. }));
        }
        assert!(saw_fanout && saw_cond, "shape space must be exercised");
        assert_ne!(random_dag_spec(1, 8, 6), random_dag_spec(2, 8, 6));
    }

    #[test]
    fn chain_helper_builds_the_degenerate_dag() {
        let spec = DagSpec::chain(&[0, 1, 0]);
        spec.validate(2);
        assert_eq!(spec.hops(), 3);
        assert_eq!(spec.nodes[2].input, 1);
    }
}
