//! Taking the clean-state snapshot (§4.2).
//!
//! The snapshot is taken once per container, after initialization and the
//! deployer-provided dummy request (§4.1), and *before* the first real
//! (secret-carrying) request — so its contents are guaranteed free of
//! request data. It stores, in the manager's memory: per-thread CPU state,
//! the memory layout, and the contents of every present page.

use std::collections::BTreeMap;

use gh_mem::{FrameData, FrameId, FrameTable, Vma, VmaKind, Vpn};
use gh_proc::{Kernel, Pid, PtraceSession, Tid};
use gh_sim::clock::Stopwatch;
use gh_sim::Nanos;

use crate::error::GhError;
use crate::track::MemoryTracker;

/// How page contents are held in the manager's memory.
#[derive(Clone, Debug)]
pub enum SnapshotPages {
    /// Full copies of every present page (the paper's implementation).
    Eager(BTreeMap<u64, FrameData>),
    /// Copy-on-write references into the frame table — §5.5's proposed
    /// optimization: manager memory stays proportional to the pages the
    /// function *modifies* over its lifetime, at the cost of one
    /// on-critical-path CoW fault per unique modified page.
    Cow(BTreeMap<u64, FrameId>),
}

/// A clean-state process snapshot held in the manager's memory.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Virtual time the snapshot was completed.
    pub taken_at: Nanos,
    /// Per-thread register files.
    pub regs: Vec<(Tid, gh_proc::RegisterSet)>,
    /// The memory layout at snapshot time.
    pub vmas: Vec<Vma>,
    /// The program break at snapshot time.
    pub brk: Vpn,
    /// Contents of every present page, keyed by vpn.
    pub pages: SnapshotPages,
}

impl Snapshot {
    /// Present pages captured.
    pub fn present_pages(&self) -> u64 {
        match &self.pages {
            SnapshotPages::Eager(m) => m.len() as u64,
            SnapshotPages::Cow(m) => m.len() as u64,
        }
    }

    /// Mapped pages at snapshot time.
    pub fn mapped_pages(&self) -> u64 {
        self.vmas.iter().map(|v| v.range.len()).sum()
    }

    /// True if `vpn` was present (and thus has saved contents).
    pub fn has_page(&self, vpn: Vpn) -> bool {
        match &self.pages {
            SnapshotPages::Eager(m) => m.contains_key(&vpn.0),
            SnapshotPages::Cow(m) => m.contains_key(&vpn.0),
        }
    }

    /// Saved page numbers, ascending.
    pub fn page_vpns(&self) -> Vec<u64> {
        match &self.pages {
            SnapshotPages::Eager(m) => m.keys().copied().collect(),
            SnapshotPages::Cow(m) => m.keys().copied().collect(),
        }
    }

    /// Saved contents of `vpn` (cloned; CoW snapshots resolve through the
    /// frame table).
    pub fn page_data(&self, vpn: Vpn, frames: &FrameTable) -> Option<FrameData> {
        match &self.pages {
            SnapshotPages::Eager(m) => m.get(&vpn.0).cloned(),
            SnapshotPages::Cow(m) => m.get(&vpn.0).map(|id| frames.data(*id).clone()),
        }
    }

    /// The stack VMAs at snapshot time (restored by zeroing, §4.4).
    pub fn stack_ranges(&self) -> Vec<gh_mem::PageRange> {
        self.vmas
            .iter()
            .filter(|v| matches!(v.kind, VmaKind::Stack))
            .map(|v| v.range)
            .collect()
    }

    /// Approximate bytes of manager memory the snapshot occupies (§5.5).
    /// Eager snapshots pay a full page per present page; CoW snapshots
    /// only pay the reference table.
    pub fn memory_bytes(&self) -> u64 {
        let meta = self.vmas.len() as u64 * 64;
        match &self.pages {
            SnapshotPages::Eager(m) => m.len() as u64 * gh_mem::PAGE_SIZE + meta,
            SnapshotPages::Cow(m) => m.len() as u64 * 16 + meta,
        }
    }

    /// Releases a CoW snapshot's frame references (no-op for eager
    /// snapshots). Must be called before dropping the snapshot if the
    /// frame table is to be reused leak-free.
    ///
    /// Cloning a snapshot does **not** duplicate frame ownership: clones
    /// share the same references and exactly one holder may release them.
    pub fn release(&mut self, frames: &mut FrameTable) {
        if let SnapshotPages::Cow(m) = &mut self.pages {
            for (_, id) in std::mem::take(m) {
                frames.decref(id);
            }
        }
    }
}

/// Timing/size record of one snapshot operation.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotReport {
    /// Total virtual time the snapshot took (the "Snapshot (ms)" column of
    /// Fig. 8).
    pub duration: Nanos,
    /// Present pages copied.
    pub present_pages: u64,
    /// Mapped pages walked.
    pub mapped_pages: u64,
    /// VMAs recorded.
    pub vmas: usize,
    /// Threads whose registers were saved.
    pub threads: usize,
}

/// Takes snapshots.
pub struct Snapshotter;

impl Snapshotter {
    /// Takes an eager (full-copy) snapshot of `pid` (§4.2 steps a–d):
    /// save CPU state of all threads, collect memory layout + page
    /// contents into the manager's memory, arm the tracker, and resume
    /// the process.
    pub fn take(
        kernel: &mut Kernel,
        pid: Pid,
        tracker: &mut dyn MemoryTracker,
    ) -> Result<(Snapshot, SnapshotReport), GhError> {
        Self::take_with(kernel, pid, tracker, false)
    }

    /// Takes a snapshot; `cow` selects §5.5's copy-on-write variant,
    /// which shares frames with the process instead of copying them and
    /// write-protects the process so the first modification of each page
    /// takes a CoW fault on the critical path.
    pub fn take_with(
        kernel: &mut Kernel,
        pid: Pid,
        tracker: &mut dyn MemoryTracker,
        cow: bool,
    ) -> Result<(Snapshot, SnapshotReport), GhError> {
        let mut sw = Stopwatch::start(&kernel.clock);
        let mut s = PtraceSession::attach(kernel, pid)?;
        // (a) Interrupt and store the CPU state of all threads.
        s.interrupt_all()?;
        let regs = s.save_regs_all()?;
        // (b) Scan /proc: memory-mapped regions and page metadata.
        let vmas = s.read_maps()?;
        let entries = s.pagemap_scan()?;
        // (c) Capture the contents of all present pages in the manager's
        // memory: full copies (eager) or shared CoW references.
        let mapped_pages: u64 = vmas.iter().map(|v| v.range.len()).sum();
        let (pages, present_pages, copy_cost) = if cow {
            let (proc, frames) = s.kernel().mem_ctx(pid)?;
            let mut refs = BTreeMap::new();
            for e in &entries {
                if let Some(pte) = proc.mem.pte(e.vpn) {
                    frames.incref(pte.frame);
                    refs.insert(e.vpn.0, pte.frame);
                }
            }
            proc.mem.mark_all_cow();
            let present = refs.len() as u64;
            let m = &s.kernel().cost;
            let cost = m.snapshot_base
                + m.snapshot_cow_ref * present
                + m.snapshot_per_mapped_page * mapped_pages;
            (SnapshotPages::Cow(refs), present, cost)
        } else {
            let mut copies = BTreeMap::new();
            for e in &entries {
                if let Some(data) = s.read_page(e.vpn)? {
                    copies.insert(e.vpn.0, data);
                }
            }
            let present = copies.len() as u64;
            let m = &s.kernel().cost;
            let cost = m.snapshot_base
                + m.snapshot_per_present_page * present
                + m.snapshot_per_mapped_page * mapped_pages;
            (SnapshotPages::Eager(copies), present, cost)
        };
        s.kernel().charge(copy_cost);
        let brk = s.kernel().process(pid)?.mem.brk();
        // (d) Reset memory tracking for the first request.
        tracker.arm(&mut s)?;
        let threads = regs.len();
        let vma_count = vmas.len();
        s.detach()?;

        let duration = sw.lap();
        let snapshot = Snapshot {
            taken_at: kernel.clock.now(),
            regs,
            vmas,
            brk,
            pages,
        };
        let report = SnapshotReport {
            duration,
            present_pages,
            mapped_pages,
            vmas: vma_count,
            threads,
        };
        Ok((snapshot, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrackerKind;
    use crate::track::make_tracker;
    use gh_mem::{Perms, Taint, Touch, VmaKind};
    use gh_proc::Kernel;

    fn machine(pages: u64) -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let pid = k.spawn("f");
        k.run_charged(pid, |p, frames| {
            let r = p.mem.mmap(pages, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(0xFEED), Taint::Clean, frames)
                    .unwrap();
            }
        })
        .unwrap();
        (k, pid)
    }

    #[test]
    fn snapshot_captures_full_state() {
        let (mut k, pid) = machine(32);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snap, report) = Snapshotter::take(&mut k, pid, tracker.as_mut()).unwrap();
        assert_eq!(report.present_pages, 32);
        assert_eq!(snap.present_pages(), 32);
        assert_eq!(report.threads, 1);
        assert!(report.vmas >= 2, "stack + anon");
        assert_eq!(snap.vmas.len(), report.vmas);
        // Contents captured.
        let (vpn, _) = k.process(pid).unwrap().mem.pagemap().next().unwrap();
        assert_eq!(
            snap.page_data(vpn, k.frames()).unwrap().read_word(1),
            0xFEED
        );
        assert!(snap.has_page(vpn));
        // Tracking armed: no page is soft-dirty anymore.
        assert!(k.process(pid).unwrap().mem.soft_dirty_pages().is_empty());
        // Process resumed.
        assert!(k.process(pid).unwrap().is_runnable());
    }

    #[test]
    fn snapshot_duration_scales_with_pages() {
        let (mut k1, p1) = machine(16);
        let (mut k2, p2) = machine(256);
        let mut t1 = make_tracker(TrackerKind::SoftDirty);
        let mut t2 = make_tracker(TrackerKind::SoftDirty);
        let (_, r1) = Snapshotter::take(&mut k1, p1, t1.as_mut()).unwrap();
        let (_, r2) = Snapshotter::take(&mut k2, p2, t2.as_mut()).unwrap();
        assert!(r2.duration > r1.duration);
        assert!(r2.present_pages > r1.present_pages);
    }

    #[test]
    fn snapshot_is_a_deep_copy() {
        let (mut k, pid) = machine(4);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snap, _) = Snapshotter::take(&mut k, pid, tracker.as_mut()).unwrap();
        let (vpn, _) = k.process(pid).unwrap().mem.pagemap().next().unwrap();
        // Mutate the live process: the snapshot must be unaffected.
        k.run_charged(pid, |p, frames| {
            p.mem
                .touch(vpn, Touch::WriteWord(0xBAD), Taint::Clean, frames)
                .unwrap();
        })
        .unwrap();
        assert_eq!(
            snap.page_data(vpn, k.frames()).unwrap().read_word(1),
            0xFEED
        );
    }

    #[test]
    fn memory_bytes_reports_full_pages() {
        let (mut k, pid) = machine(8);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snap, _) = Snapshotter::take(&mut k, pid, tracker.as_mut()).unwrap();
        assert!(snap.memory_bytes() >= 8 * gh_mem::PAGE_SIZE);
    }

    #[test]
    fn stack_ranges_found() {
        let (mut k, pid) = machine(4);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snap, _) = Snapshotter::take(&mut k, pid, tracker.as_mut()).unwrap();
        let stacks = snap.stack_ranges();
        assert_eq!(stacks.len(), 1);
        assert_eq!(
            stacks[0].len(),
            k.process(pid).unwrap().mem.config().stack_pages
        );
    }
}
