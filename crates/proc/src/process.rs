//! Processes and threads.

use gh_mem::AddressSpace;

use crate::registers::RegisterSet;

/// Process identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u32);

/// Thread identifier (unique machine-wide, like Linux TIDs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tid(pub u32);

/// Lifecycle state of a process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcessState {
    /// Scheduled normally.
    Running,
    /// All threads stopped (by a tracer).
    Stopped,
    /// Terminated; resources released.
    Zombie,
}

/// One thread: an id and a register file.
#[derive(Clone, Debug)]
pub struct Thread {
    /// Thread id.
    pub tid: Tid,
    /// Register file.
    pub regs: RegisterSet,
}

/// A process: threads plus an address space.
#[derive(Debug)]
pub struct Process {
    /// Process id (== tid of the main thread).
    pub pid: Pid,
    /// Executable name (for /proc rendering and debugging).
    pub name: String,
    /// Threads, main thread first.
    pub threads: Vec<Thread>,
    /// The address space.
    pub mem: AddressSpace,
    /// Lifecycle state.
    pub state: ProcessState,
    /// Set while a tracer is attached.
    pub traced_by_manager: bool,
}

impl Process {
    /// Number of threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The main thread.
    pub fn main_thread(&self) -> &Thread {
        &self.threads[0]
    }

    /// Mutable access to the main thread.
    pub fn main_thread_mut(&mut self) -> &mut Thread {
        &mut self.threads[0]
    }

    /// Finds a thread by tid.
    pub fn thread(&self, tid: Tid) -> Option<&Thread> {
        self.threads.iter().find(|t| t.tid == tid)
    }

    /// Finds a thread by tid, mutably.
    pub fn thread_mut(&mut self, tid: Tid) -> Option<&mut Thread> {
        self.threads.iter_mut().find(|t| t.tid == tid)
    }

    /// True if the process can execute (not stopped or dead).
    pub fn is_runnable(&self) -> bool {
        matches!(self.state, ProcessState::Running)
    }
}
