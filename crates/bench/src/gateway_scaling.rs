//! Gateway effectiveness: result-cache speedup and predictive
//! pre-warming vs the reactive autoscaler.
//!
//! Unlike the host-parallel `*_scaling` rigs, every number here is
//! **virtual-time** — deterministic and machine-independent — so the
//! headline ratio is gate-safe without the single-core escape hatch.
//!
//! Two scenarios over the same function (`fannkuch (p)`):
//!
//! - **Cache**: a pool driven far past its capacity with ~50% of
//!   requests idempotent over a small payload universe. The gated
//!   [`GatewayScalingReport::cache_speedup`] is the served-request
//!   goodput quotient of the cache-enabled run over the *same workload*
//!   with the gateway disabled. Overloaded, the span is service-bound,
//!   so shedding ~half the backend work from the critical path must
//!   roughly double goodput (acceptance floor 2x). The disabled run
//!   doubles as an in-rig oracle: its fleet result must be byte-
//!   identical to the ungated [`gh_faas::fleet::Fleet::run`] reference (payload draws
//!   ride a separate RNG stream), and its stats memory must not depend
//!   on the request count.
//! - **Pre-warm**: a diurnal workload whose peaks need a deeper pool.
//!   Both sides get the same container-memory budget ([`MAX_POOL`]);
//!   the reactive side grows only after queues back up, the predictive
//!   side projects the EWMA arrival rate through the trace's diurnal
//!   phase one horizon ahead. p99 sojourns are published as `info_`
//!   metrics and the rig asserts the predictive side does not lose —
//!   deterministic virtual time makes that assert noise-free.

use gh_faas::fleet::{AutoscaleConfig, FleetConfig, RoutePolicy};
use gh_faas::gateway::{
    run_gateway_fleet, run_ungated_reference, GatewayFleetConfig, GatewayResult,
};
use gh_functions::catalog::by_name;
use gh_gateway::cache::CacheConfig;
use gh_gateway::prewarm::PrewarmConfig;
use gh_gateway::GatewayConfig;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use gh_sim::Nanos;
use groundhog_core::GroundhogConfig;

/// Seed of every run in the rig.
const SEED: u64 = 61;
/// Container-memory budget of the pre-warm comparison (max pool size
/// on both sides).
pub const MAX_POOL: usize = 4;
/// Fraction of requests flagged idempotent in the cache scenario. Set
/// slightly above the ~50% hit-ratio target: fills become visible only
/// when the filling response leaves the overloaded backend, so a slice
/// of early idempotent arrivals miss against in-flight fills.
const IDEMPOTENT_FRAC: f64 = 0.6;

/// Requests per measured run (`GH_GATEWAY_REQUESTS` overrides).
pub fn requests() -> usize {
    std::env::var("GH_GATEWAY_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000)
}

/// Samples per cell (`GH_GATEWAY_ITERS` overrides; default 3). The
/// numbers are virtual-time, so unlike the wall-clock rigs there is no
/// noise to minimize away — every repeat must be *bit-identical* to
/// the first, and the extra samples exist purely as free determinism
/// asserts (the same `GH_*_ITERS` treatment as the wall-clock rigs,
/// with the min degenerating to the common value).
pub fn iters() -> u32 {
    std::env::var("GH_GATEWAY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Runs `cell` `iters` times, asserting every repeat bit-identical to
/// the first, and returns the first result.
fn repeat_identical(label: &str, iters: u32, cell: impl Fn() -> GatewayResult) -> GatewayResult {
    let first = cell();
    let fp = format!("{:?},{:?}", first.fleet, first.gateway);
    for i in 1..iters {
        let again = cell();
        assert_eq!(
            fp,
            format!("{:?},{:?}", again.fleet, again.gateway),
            "{label}: repeat {i} diverged from the first sample"
        );
    }
    first
}

/// Virtual-time outcomes of both scenarios.
pub struct GatewayScalingReport {
    /// Requests per measured run.
    pub requests: usize,
    /// Goodput of the cache-enabled overloaded run, r/s.
    pub cached_goodput_rps: f64,
    /// Goodput of the same workload with the gateway disabled, r/s.
    pub ungated_goodput_rps: f64,
    /// Cache hit ratio of the enabled run (hits / served).
    pub hit_ratio: f64,
    /// p99 sojourn under the predictive pre-warmer, ms.
    pub prewarm_p99_ms: f64,
    /// p99 sojourn under the reactive autoscaler, ms.
    pub reactive_p99_ms: f64,
    /// Pre-warm cold starts issued (≤ the shared budget).
    pub prewarm_spawns: u64,
    /// Reactive cold starts issued.
    pub reactive_spawns: usize,
    /// Percentile-tracking bytes per run — constant in `requests`.
    pub stats_bytes: u64,
}

impl GatewayScalingReport {
    /// Served-request goodput quotient, cache-enabled over ungated.
    pub fn cache_speedup(&self) -> f64 {
        self.cached_goodput_rps / self.ungated_goodput_rps.max(f64::MIN_POSITIVE)
    }
}

/// The overload workload of the cache scenario: ~4x pool capacity so
/// the span is service-bound, idempotent traffic over a tiny payload
/// universe so the achievable hit ratio approaches [`IDEMPOTENT_FRAC`].
fn cache_workload(gateway: GatewayConfig) -> GatewayFleetConfig {
    GatewayFleetConfig {
        idempotent_frac: IDEMPOTENT_FRAC,
        payload_universe: 8,
        ..GatewayFleetConfig::passthrough(FleetConfig::fixed(
            RoutePolicy::LeastLoaded,
            1_000.0,
            SEED,
        ))
    }
    .with_gateway(gateway)
}

fn run_cache_cell(gateway: GatewayConfig, requests: usize) -> GatewayResult {
    let spec = by_name("fannkuch (p)").expect("catalog");
    run_gateway_fleet(
        &spec,
        StrategyKind::Gh,
        GroundhogConfig::gh(),
        2,
        cache_workload(gateway),
        requests,
    )
    .expect("gateway run")
}

/// The diurnal workload of the pre-warm scenario: mean load near one
/// slot's capacity with peaks that need the full budget.
fn diurnal_workload(gateway: GatewayConfig, autoscale: bool) -> GatewayFleetConfig {
    let mut fleet = FleetConfig::fixed(RoutePolicy::LeastLoaded, 180.0, SEED).with_principals(4);
    if autoscale {
        fleet.autoscale = Some(AutoscaleConfig {
            min_size: 1,
            max_size: MAX_POOL,
            ..AutoscaleConfig::default()
        });
    }
    GatewayFleetConfig {
        diurnal_amplitude: 0.8,
        diurnal_period: Nanos::from_secs(20),
        ..GatewayFleetConfig::passthrough(fleet)
    }
    .with_gateway(gateway)
}

fn run_prewarm_cell(predictive: bool, requests: usize) -> GatewayResult {
    let spec = by_name("fannkuch (p)").expect("catalog");
    let gateway = if predictive {
        GatewayConfig::builder()
            .prewarm(PrewarmConfig {
                diurnal_amplitude: 0.8,
                diurnal_period: Nanos::from_secs(20),
                ..PrewarmConfig::flat(Nanos::from_secs(2), MAX_POOL)
            })
            .build()
    } else {
        GatewayConfig::disabled()
    };
    run_gateway_fleet(
        &spec,
        StrategyKind::Gh,
        GroundhogConfig::gh(),
        1,
        diurnal_workload(gateway, !predictive),
        requests,
    )
    .expect("gateway run")
}

/// Runs both scenarios; asserts the in-rig oracle, the bounded stats
/// memory, and that the predictive side does not lose the p99 race.
pub fn run() -> GatewayScalingReport {
    let requests = requests();
    let iters = iters();
    let spec = by_name("fannkuch (p)").expect("catalog");

    // Cache scenario + in-rig oracle: the disabled cell must replay the
    // ungated fleet bit for bit. Both cells run `iters` times with
    // repeats asserted bit-identical, so the gated speedup quotient is
    // backed by a determinism check on each operand.
    let cached = repeat_identical("cached", iters, || {
        run_cache_cell(
            GatewayConfig::builder()
                .cache(CacheConfig::default_for_ttl(Nanos::from_secs(60)))
                .build(),
            requests,
        )
    });
    let ungated = repeat_identical("ungated", iters, || {
        run_cache_cell(GatewayConfig::disabled(), requests)
    });
    let reference = run_ungated_reference(
        &spec,
        StrategyKind::Gh,
        GroundhogConfig::gh(),
        2,
        FleetConfig::fixed(RoutePolicy::LeastLoaded, 1_000.0, SEED),
        requests,
    )
    .expect("ungated reference");
    assert_eq!(
        format!("{:?}", ungated.fleet),
        format!("{reference:?}"),
        "cache-off gateway diverged from the ungated fleet"
    );
    // Bounded stats memory: 20x fewer requests, same sketch footprint.
    let small = run_cache_cell(GatewayConfig::disabled(), requests.div_ceil(20));
    assert_eq!(
        cached.fleet.stats.stats_bytes, small.fleet.stats.stats_bytes,
        "gateway stats memory must be independent of the request count"
    );

    // Pre-warm scenario at one shared container-memory budget.
    let predictive = run_prewarm_cell(true, requests);
    let reactive = run_prewarm_cell(false, requests);
    assert!(
        predictive.fleet.p99_ms <= reactive.fleet.p99_ms,
        "predictive pre-warm must not lose to the reactive autoscaler: {:.2}ms vs {:.2}ms",
        predictive.fleet.p99_ms,
        reactive.fleet.p99_ms,
    );

    GatewayScalingReport {
        requests,
        cached_goodput_rps: cached.fleet.goodput_rps,
        ungated_goodput_rps: ungated.fleet.goodput_rps,
        hit_ratio: cached.gateway.cache_hits as f64 / (cached.gateway.served as f64).max(1.0),
        prewarm_p99_ms: predictive.fleet.p99_ms,
        reactive_p99_ms: reactive.fleet.p99_ms,
        prewarm_spawns: predictive.gateway.prewarm_spawns,
        reactive_spawns: reactive.fleet.stats.spawned,
        stats_bytes: cached.fleet.stats.stats_bytes,
    }
}

/// Renders the report for the console and `results/scaling_gateway.csv`.
pub fn render(r: &GatewayScalingReport) -> TextTable {
    let mut t = TextTable::new(&[
        "requests",
        "cached r/s",
        "ungated r/s",
        "speedup",
        "hit ratio",
        "prewarm p99 ms",
        "reactive p99 ms",
        "prewarm spawns",
        "reactive spawns",
    ]);
    t.row_owned(vec![
        r.requests.to_string(),
        format!("{:.1}", r.cached_goodput_rps),
        format!("{:.1}", r.ungated_goodput_rps),
        format!("{:.2}x", r.cache_speedup()),
        format!("{:.2}", r.hit_ratio),
        format!("{:.2}", r.prewarm_p99_ms),
        format!("{:.2}", r.reactive_p99_ms),
        r.prewarm_spawns.to_string(),
        r.reactive_spawns.to_string(),
    ]);
    t
}
