//! Host-parallel fleet execution: the shard half of the two-phase
//! parallel [`Fleet::run`](super::Fleet::run).
//!
//! A fleet run parallelizes in three phases (see the module docs of
//! [`super`] for the invariant):
//!
//! 1. **Plan (coordinator):** arrivals and routing decisions are
//!    precomputed on the caller's thread with a clone of the router —
//!    round-robin routing reads only the slots' (static) retired flags,
//!    so the decisions are independent of container progress;
//! 2. **Shard (workers):** the pool's slots are split into contiguous
//!    shards across `std::thread::scope` workers; [`drive_shard`] runs
//!    each shard's slice of the virtual timeline through its own
//!    [`EventQueue`] and records every dispatch per slot, in order;
//! 3. **Merge (coordinator):** the global event loop is replayed
//!    against per-slot mirrors, consuming the recorded dispatches in
//!    the exact order the serial loop would have produced them — same
//!    event schedule, same tie-breaking sequence numbers, therefore
//!    bit-identical sojourn ordering, queue-depth samples and router
//!    cursor state.
//!
//! A slot's dispatch outcomes depend only on its own arrival times and
//! its own previous readiness (`dispatch` fires at
//! `max(arrival, prev_ready)` and failed dispatch attempts are
//! side-effect-free), so shard-local event processing reproduces the
//! serial per-slot timelines exactly; the replay then reproduces the
//! serial global interleaving exactly. Serial mode remains the
//! bit-exact reference, enforced by the differential oracle in
//! `tests/fleet_par_oracle.rs`.

use gh_isolation::StrategyError;
use gh_sim::event::EventQueue;
use gh_sim::Nanos;

use super::pool::{Dispatched, Slot};
use super::queue::Pending;

/// How [`Fleet::run_with`](super::Fleet::run_with) executes a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Parallel when eligible, honoring `--serial` / `GH_SERIAL=1`
    /// (forces serial) and `GH_THREADS=n` (worker count; defaults to
    /// the host's available parallelism).
    #[default]
    Auto,
    /// The bit-exact reference: one global event loop on the caller's
    /// thread.
    Serial,
    /// Shard across up to `threads` workers. Still subject to the
    /// eligibility gates (round-robin policy, no autoscaler, ≥ 2 slots,
    /// ≥ 2 threads): an ineligible run falls back to serial.
    Parallel {
        /// Worker threads to shard across.
        threads: usize,
    },
}

/// True when the caller asked for the serial fallback (`--serial` on
/// the command line, or `GH_SERIAL=1` in the environment) — the same
/// convention as `gh_bench::harness::serial_requested`.
pub(crate) fn serial_requested() -> bool {
    std::env::args().any(|a| a == "--serial") || std::env::var("GH_SERIAL").is_ok_and(|v| v != "0")
}

/// Worker count for [`ExecMode::Auto`]: `GH_THREADS=n` when set, else
/// the host's available parallelism.
pub(crate) fn configured_threads() -> usize {
    match std::env::var("GH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// One precomputed arrival: the coordinator's phase-1 routing decision.
pub(crate) struct Arrival {
    /// Virtual arrival time at the router.
    pub at: Nanos,
    /// Request id (the serial loop's `next_id` sequence).
    pub id: u64,
    /// Issuing principal.
    pub principal: String,
    /// Slot the (cloned) router assigned.
    pub slot: usize,
}

/// Shard-local events: indices into the global plan / the shard slice.
enum ShardEv {
    /// The plan entry at this index arrives at its slot.
    Arrival(usize),
    /// The shard-local slot at this index finished its restore.
    Ready(usize),
}

/// Drives one contiguous shard of slots (`slots[0]` is global slot
/// `base`) through its slice of the virtual timeline: every plan entry
/// routed into the shard is queued at its arrival time and dispatched
/// exactly as the serial event loop would (`max(arrival, prev_ready)`
/// per slot, FIFO per queue). Each dispatch outcome is appended to the
/// slot's `outs` vector in dispatch order, for the coordinator's
/// deterministic replay.
pub(crate) fn drive_shard(
    slots: &mut [Slot],
    base: usize,
    plan: &[Arrival],
    input_kb: u64,
    outs: &mut [Vec<Dispatched>],
) -> Result<(), StrategyError> {
    let mut events: EventQueue<ShardEv> = EventQueue::new();
    // Pre-schedule the shard's arrivals in global plan order, so
    // equal-time arrivals keep their global tie order within the shard.
    for (pi, a) in plan.iter().enumerate() {
        if a.slot >= base && a.slot < base + slots.len() {
            events.schedule(a.at, ShardEv::Arrival(pi));
        }
    }
    while let Some((now, ev)) = events.pop() {
        let local = match ev {
            ShardEv::Arrival(pi) => {
                let a = &plan[pi];
                let local = a.slot - base;
                slots[local].queue.push(Pending {
                    id: a.id,
                    principal: a.principal.clone(),
                    input_kb,
                    arrival: a.at,
                    payload_hash: 0,
                    idempotent: false,
                    attempt: 1,
                });
                local
            }
            ShardEv::Ready(local) => local,
        };
        if let Some(d) = slots[local].dispatch(now)? {
            outs[local].push(d);
            events.schedule(d.ready_at, ShardEv::Ready(local));
        }
    }
    Ok(())
}
