//! Differential test: the plan-based restore engine vs. the pre-refactor
//! monolith.
//!
//! `reference_restore` below is a verbatim copy of the monolithic
//! `Restorer::restore` as it existed before the planner/executor split.
//! For randomized dirty sets (seeded [`DetRng`] loop, per the workspace's
//! proptest convention) run on twin rigs, the pipeline at
//! `restore_lanes = 1` must be **bit-for-bit** identical to the
//! reference: same [`Breakdown`], same report counters, same final
//! virtual time, and the restored process must pass
//! `verify_matches_snapshot`.

use std::collections::BTreeSet;

use gh_mem::{PageRange, Perms, RequestId, Taint, Touch, VmaKind, Vpn};
use gh_proc::{Kernel, Pid, PtraceSession};
use gh_sim::clock::Stopwatch;
use gh_sim::DetRng;
use groundhog_core::breakdown::{Breakdown, RestorePhase};
use groundhog_core::restore::verify_matches_snapshot;
use groundhog_core::snapshot::{Snapshot, Snapshotter};
use groundhog_core::track::{make_tracker, MemoryTracker};
use groundhog_core::{GhError, GroundhogConfig, Restorer, TrackerKind};

/// What the reference monolith reports: `(breakdown, dirty, restored,
/// runs, newly_paged, stack_zeroed, syscalls)`.
type ReferenceOutcome = (Breakdown, u64, u64, u64, u64, u64, usize);

/// The pre-refactor monolithic restore, preserved as the test oracle.
#[allow(clippy::too_many_lines)]
fn reference_restore(
    kernel: &mut Kernel,
    pid: Pid,
    snapshot: &Snapshot,
    tracker: &mut dyn MemoryTracker,
    cfg: &GroundhogConfig,
) -> Result<ReferenceOutcome, GhError> {
    fn count_runs(sorted: &[u64]) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        1 + sorted.windows(2).filter(|w| w[1] != w[0] + 1).count() as u64
    }
    fn group_ranges(sorted: &[u64]) -> Vec<PageRange> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let start = sorted[i];
            let mut end = start + 1;
            i += 1;
            while i < sorted.len() && sorted[i] == end {
                end += 1;
                i += 1;
            }
            out.push(PageRange::new(Vpn(start), Vpn(end)));
        }
        out
    }

    let mut bd = Breakdown::new();
    let mut sw = Stopwatch::start(&kernel.clock);
    let mut s = PtraceSession::attach(kernel, pid)?;

    s.interrupt_all()?;
    bd.add(RestorePhase::Interrupting, sw.lap());

    let cur_maps = s.read_maps()?;
    bd.add(RestorePhase::ReadingMaps, sw.lap());

    let dirty_report = tracker.collect(&mut s)?;
    bd.add(RestorePhase::ScanningPageMetadata, sw.lap());

    let cur_brk = s.kernel().process(pid)?.mem.brk();
    let diff =
        groundhog_core::LayoutDiff::compute(&snapshot.vmas, snapshot.brk, &cur_maps, cur_brk);
    let diff_cost = s
        .kernel()
        .cost
        .diff_cost(cur_maps.len() + snapshot.vmas.len());
    s.kernel().charge(diff_cost);
    bd.add(RestorePhase::DiffingMemoryLayouts, sw.lap());

    let plan = diff.plan();
    let syscalls_injected = plan.len();
    for sc in plan {
        let phase = match sc.mnemonic() {
            "brk" => RestorePhase::Brk,
            "mmap" => RestorePhase::Mmap,
            "munmap" => RestorePhase::Munmap,
            "madvise" => RestorePhase::Madvise,
            _ => RestorePhase::Mprotect,
        };
        s.inject(sc)?;
        bd.add(phase, sw.lap());
    }

    let stack_ranges = snapshot.stack_ranges();
    let in_stack = |vpn: u64| stack_ranges.iter().any(|r| r.contains(Vpn(vpn)));
    let in_ranges = |ranges: &[PageRange], vpn: u64| ranges.iter().any(|r| r.contains(Vpn(vpn)));

    let mut newly_paged = 0u64;
    let mut stack_zeroed = 0u64;
    let mut present_after: Option<BTreeSet<u64>> = None;
    // (Adapter: the tracker now reports present pages as coalesced runs;
    // the monolith's per-page set is their mechanical expansion.)
    if let Some(present_runs) = &dirty_report.present_runs {
        let mut present: BTreeSet<u64> = present_runs
            .iter()
            .flat_map(|r| r.iter().map(|v| v.0))
            .filter(|&v| !in_ranges(&diff.to_munmap, v))
            .collect();

        let fresh: Vec<u64> = present
            .iter()
            .copied()
            .filter(|&v| !snapshot.has_page(Vpn(v)))
            .collect();
        let mut evicted: Vec<u64> = Vec::new();
        for &v in &fresh {
            if in_stack(v) {
                if cfg.zero_stack {
                    s.zero_page(Vpn(v))?;
                    stack_zeroed += 1;
                }
            } else if cfg.madvise_new {
                s.evict_page(Vpn(v))?;
                evicted.push(v);
            }
        }
        newly_paged = evicted.len() as u64;
        let evict_runs = group_ranges(&evicted).len() as u64;
        let madvise_cost = s.kernel().cost.syscall_inject * evict_runs
            + s.kernel().cost.madvise_new_page * newly_paged;
        s.kernel().charge(madvise_cost);
        for v in &evicted {
            present.remove(v);
        }
        bd.add(RestorePhase::Madvise, sw.lap());

        let zero_cost = s.kernel().cost.zero_stack_page * stack_zeroed;
        s.kernel().charge(zero_cost);
        present_after = Some(present);
    }

    let mut restore_set: BTreeSet<u64> = dirty_report
        .dirty
        .iter()
        .map(|v| v.0)
        .filter(|&v| snapshot.has_page(Vpn(v)))
        .collect();
    match &present_after {
        Some(present) => {
            for v in snapshot.page_vpns() {
                if !present.contains(&v) {
                    restore_set.insert(v);
                }
            }
        }
        None => {
            let remapped: Vec<PageRange> = diff.to_remap.iter().map(|r| r.range).collect();
            for v in snapshot.page_vpns() {
                if in_ranges(&remapped, v) {
                    restore_set.insert(v);
                }
            }
        }
    }
    let sorted: Vec<u64> = restore_set.iter().copied().collect();
    let runs = count_runs(&sorted);
    let pages_restored = sorted.len() as u64;
    for &v in &sorted {
        let data = snapshot
            .page_data(Vpn(v), s.kernel().frames())
            .expect("restore set ⊆ snapshot");
        s.write_page(Vpn(v), &data, Taint::Clean)?;
    }
    let copy_cost = if cfg.coalesce {
        s.kernel().cost.restore_pages_cost(pages_restored, runs)
    } else {
        s.kernel()
            .cost
            .restore_pages_cost_uncoalesced(pages_restored)
    };
    s.kernel().charge(copy_cost);
    bd.add(RestorePhase::RestoringMemory, sw.lap());

    tracker.arm(&mut s)?;
    bd.add(RestorePhase::ClearingSoftDirtyBits, sw.lap());

    s.restore_regs_all(&snapshot.regs)?;
    bd.add(RestorePhase::RestoringRegisters, sw.lap());

    s.detach()?;
    bd.add(RestorePhase::Detaching, sw.lap());

    Ok((
        bd,
        dirty_report.dirty.len() as u64,
        pages_restored,
        runs,
        newly_paged,
        stack_zeroed,
        syscalls_injected,
    ))
}

/// One rig: a 64-page anon region + heap, snapshotted.
struct Rig {
    kernel: Kernel,
    pid: Pid,
    snapshot: Snapshot,
    tracker: Box<dyn MemoryTracker>,
    region: PageRange,
}

fn rig(tracker_kind: TrackerKind) -> Rig {
    let mut kernel = Kernel::boot();
    let pid = kernel.spawn("twin");
    let heap_base = kernel.process(pid).unwrap().mem.config().heap_base;
    let region = kernel
        .run_charged(pid, |p, frames| {
            let r = p.mem.mmap(64, Perms::RW, VmaKind::Anon).unwrap();
            p.mem.set_brk(Vpn(heap_base.0 + 16), frames).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(0xC1EA4), Taint::Clean, frames)
                    .unwrap();
            }
            r
        })
        .unwrap()
        .0;
    let mut tracker = make_tracker(tracker_kind);
    let (snapshot, _) = Snapshotter::take(&mut kernel, pid, tracker.as_mut()).unwrap();
    Rig {
        kernel,
        pid,
        snapshot,
        tracker,
        region,
    }
}

/// Applies an identical random activation to a rig: scattered writes,
/// reads, an occasional mmap/munmap/brk/madvise, register scrambles.
fn perturb(rig: &mut Rig, rng_seed: u64, req: u64) {
    let region = rig.region;
    let heap_base = rig.kernel.process(rig.pid).unwrap().mem.config().heap_base;
    let mut rng = DetRng::new(rng_seed);
    let acts = 1 + rng.next_below(39);
    rig.kernel
        .run_charged(rig.pid, |p, frames| {
            for _ in 0..acts {
                match rng.next_below(7) {
                    0 => {
                        let _ = p.mem.touch(
                            Vpn(region.start.0 + rng.next_below(64)),
                            Touch::WriteWord(rng.next_u64()),
                            Taint::One(RequestId(req)),
                            frames,
                        );
                    }
                    1 => {
                        let _ = p.mem.touch(
                            Vpn(region.start.0 + rng.next_below(64)),
                            Touch::Read,
                            Taint::Clean,
                            frames,
                        );
                    }
                    2 => {
                        if let Ok(r) = p.mem.mmap(1 + rng.next_below(15), Perms::RW, VmaKind::Anon)
                        {
                            let _ = p.mem.touch(
                                r.start,
                                Touch::WriteWord(0x11),
                                Taint::One(RequestId(req)),
                                frames,
                            );
                        }
                    }
                    3 => {
                        let _ = p.mem.munmap(
                            PageRange::at(
                                Vpn(region.start.0 + rng.next_below(64)),
                                1 + rng.next_below(3),
                            ),
                            frames,
                        );
                    }
                    4 => {
                        let cur = p.mem.brk().0 as i64;
                        let delta = rng.next_below(40) as i64 - 8;
                        let new = (cur + delta).max(heap_base.0 as i64) as u64;
                        let _ = p.mem.set_brk(Vpn(new), frames);
                    }
                    5 => {
                        let _ = p.mem.madvise_dontneed(
                            PageRange::at(
                                Vpn(region.start.0 + rng.next_below(64)),
                                1 + rng.next_below(3),
                            ),
                            frames,
                        );
                    }
                    _ => {
                        p.threads[0]
                            .regs
                            .scramble(rng.next_u64(), Taint::One(RequestId(req)));
                    }
                }
            }
        })
        .unwrap();
}

#[test]
fn one_lane_pipeline_is_bit_identical_to_monolith() {
    for case in 0..48u64 {
        let mut old = rig(TrackerKind::SoftDirty);
        let mut new = rig(TrackerKind::SoftDirty);
        let cfg = GroundhogConfig::gh();
        assert_eq!(cfg.restore_lanes, 1);
        for round in 0..2u64 {
            let seed = 0x091A_5EED ^ (case << 8) ^ round;
            perturb(&mut old, seed, round + 1);
            perturb(&mut new, seed, round + 1);

            let (bd, dirty, restored, runs, newly, zeroed, syscalls) = reference_restore(
                &mut old.kernel,
                old.pid,
                &old.snapshot,
                old.tracker.as_mut(),
                &cfg,
            )
            .unwrap();
            let report = Restorer::restore(
                &mut new.kernel,
                new.pid,
                &new.snapshot,
                new.tracker.as_mut(),
                &cfg,
            )
            .unwrap();

            assert_eq!(report.breakdown, bd, "case {case} round {round}: breakdown");
            assert_eq!(report.total, bd.total(), "case {case}: total");
            assert_eq!(report.dirty_pages, dirty, "case {case}: dirty");
            assert_eq!(report.pages_restored, restored, "case {case}: restored");
            assert_eq!(report.runs, runs, "case {case}: runs");
            assert_eq!(report.newly_paged, newly, "case {case}: newly paged");
            assert_eq!(report.stack_zeroed, zeroed, "case {case}: stack zeroed");
            assert_eq!(report.syscalls_injected, syscalls, "case {case}: syscalls");
            assert_eq!(
                old.kernel.clock.now(),
                new.kernel.clock.now(),
                "case {case} round {round}: virtual timelines diverged"
            );

            verify_matches_snapshot(&new.kernel, new.pid, &new.snapshot)
                .unwrap_or_else(|e| panic!("case {case} round {round}: {e}"));
            verify_matches_snapshot(&old.kernel, old.pid, &old.snapshot)
                .unwrap_or_else(|e| panic!("case {case} round {round} (reference): {e}"));
        }
    }
}

#[test]
fn one_lane_pipeline_matches_monolith_under_uffd() {
    // UFFD has no pagemap view: the madvise/stack-zero passes are
    // skipped and the fallback restore set is exercised.
    for case in 0..24u64 {
        let mut old = rig(TrackerKind::Uffd);
        let mut new = rig(TrackerKind::Uffd);
        let cfg = GroundhogConfig {
            tracker: TrackerKind::Uffd,
            ..GroundhogConfig::gh()
        };
        // Writes/reads only (the workloads UFFD is sound for).
        let seed = 0xF0F ^ case;
        let mut rng = DetRng::new(seed);
        let offsets: Vec<u64> = (0..1 + rng.next_below(30))
            .map(|_| rng.next_below(64))
            .collect();
        for r in [&mut old, &mut new] {
            let region = r.region;
            r.kernel
                .run_charged(r.pid, |p, frames| {
                    for &off in &offsets {
                        let _ = p.mem.touch(
                            Vpn(region.start.0 + off),
                            Touch::WriteWord(0xAB ^ off),
                            Taint::One(RequestId(1)),
                            frames,
                        );
                    }
                })
                .unwrap();
        }
        let (bd, dirty, restored, ..) = reference_restore(
            &mut old.kernel,
            old.pid,
            &old.snapshot,
            old.tracker.as_mut(),
            &cfg,
        )
        .unwrap();
        let report = Restorer::restore(
            &mut new.kernel,
            new.pid,
            &new.snapshot,
            new.tracker.as_mut(),
            &cfg,
        )
        .unwrap();
        assert_eq!(report.breakdown, bd, "case {case}");
        assert_eq!(report.dirty_pages, dirty);
        assert_eq!(report.pages_restored, restored);
        assert_eq!(old.kernel.clock.now(), new.kernel.clock.now());
    }
}

#[test]
fn multi_lane_pipeline_restores_identically_but_faster() {
    // Lanes change the virtual-time charge of the writeback pass only:
    // the restored state and every non-time counter stay identical, and
    // the restore gets strictly faster when there is enough work.
    for case in 0..16u64 {
        let mut serial = rig(TrackerKind::SoftDirty);
        let mut wide = rig(TrackerKind::SoftDirty);
        let seed = 0xBEE ^ (case << 4);
        perturb(&mut serial, seed, 1);
        perturb(&mut wide, seed, 1);

        let cfg1 = GroundhogConfig::gh();
        let cfg4 = GroundhogConfig::with_lanes(4);
        let one = Restorer::restore(
            &mut serial.kernel,
            serial.pid,
            &serial.snapshot,
            serial.tracker.as_mut(),
            &cfg1,
        )
        .unwrap();
        let four = Restorer::restore(
            &mut wide.kernel,
            wide.pid,
            &wide.snapshot,
            wide.tracker.as_mut(),
            &cfg4,
        )
        .unwrap();

        assert_eq!(one.dirty_pages, four.dirty_pages, "case {case}");
        assert_eq!(one.pages_restored, four.pages_restored, "case {case}");
        assert_eq!(one.runs, four.runs, "case {case}");
        assert_eq!(one.newly_paged, four.newly_paged, "case {case}");
        verify_matches_snapshot(&wide.kernel, wide.pid, &wide.snapshot)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        if one.pages_restored >= 8 {
            assert!(
                four.total < one.total,
                "case {case}: 4 lanes {} !< 1 lane {}",
                four.total,
                one.total
            );
        }
    }
}
