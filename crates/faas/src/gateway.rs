//! The gateway-wrapped fleet: result caching, admission control and
//! predictive pre-warming in front of one function's container pool.
//!
//! This is the fleet-level event loop that wires the policies of
//! [`gh_gateway`] between clients and [`Pool`]: arrivals pass through
//! the result cache (idempotent hits are answered at the gateway and
//! never reach a container), then per-principal token-bucket admission
//! and the global concurrency ceiling (rejects are shed, defers are
//! parked and released as backend capacity frees), and the pre-warmer
//! watches backend arrivals to grow the pool *ahead* of load where the
//! reactive [`Autoscaler`](crate::fleet::Autoscaler) would trail it.
//!
//! # Determinism contract
//!
//! The loop is structured so that a [`GatewayConfig::disabled`] gateway
//! over a flat workload replays the ungated
//! [`Fleet::run`](super::fleet::Fleet::run) serial reference **bit for
//! bit**: the arrival and principal RNG streams, per-stream draw order,
//! and the sequence of event-queue `schedule` calls (which fixes
//! tie-breaking) are identical, and gateway-only draws (payload
//! identity, principal skew, diurnal thinning) ride separate seeded
//! streams that are skipped entirely when their feature is off. The
//! differential oracle in `tests/gateway_oracle.rs` pins this.
//!
//! Cache expiry is driven as events on the same [`EventQueue`] (one
//! `CacheExpire` per insertion, at the entry's exact virtual-time
//! deadline), so enabling the cache changes the schedule only through
//! its own events — never by perturbing the arrival process.

use std::collections::VecDeque;

use gh_functions::FunctionSpec;
use gh_gateway::admission::{AdmissionControl, Decision};
use gh_gateway::cache::{mix, CacheKey, ResultCache};
use gh_gateway::prewarm::Prewarmer;
use gh_gateway::{GatewayConfig, GatewayStats};
use gh_isolation::{StrategyError, StrategyKind};
use gh_sim::event::EventQueue;
use gh_sim::{DetRng, Nanos, QuantileSketch};
use groundhog_core::GroundhogConfig;

use crate::fault::{FaultConfig, FaultPlan};
use crate::fleet::{
    poisson_gap, DepthTracker, ExecMode, Fleet, FleetConfig, FleetResult, Pending, Pool,
    ScaleAction,
};

/// Workload and policy of one gateway-fronted fleet run. The workload
/// knobs extend the plain fleet's Poisson process; every knob's zero
/// value means "exactly the ungated fleet workload".
#[derive(Clone, Debug)]
pub struct GatewayFleetConfig {
    /// The underlying fleet (policy, offered load, seed, principals,
    /// optional reactive autoscaler).
    pub fleet: FleetConfig,
    /// Gateway policies; [`GatewayConfig::disabled`] is a pass-through.
    pub gateway: GatewayConfig,
    /// Fraction of requests flagged idempotent (cache-eligible); 0
    /// skips the payload stream entirely.
    pub idempotent_frac: f64,
    /// Distinct payloads idempotent requests draw from — smaller means
    /// a higher achievable hit ratio.
    pub payload_universe: u64,
    /// Principal skew: with this probability an arrival is issued by
    /// principal 0 instead of a uniform draw; 0 skips the skew stream.
    pub hot_principal_frac: f64,
    /// Diurnal arrival-rate amplitude `A` in `[0, 1)`: the offered rate
    /// swings between `(1−A)` and `(1+A)` × `fleet.offered_rps`
    /// (realized by thinning, like [`crate::trace::TraceGen`]); 0 keeps
    /// the plain homogeneous Poisson process.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal envelope.
    pub diurnal_period: Nanos,
    /// Fault injection behind the gateway: container deaths release the
    /// concurrency ceiling (draining defers) and are retried per the
    /// plan's policy; a died attempt never fills the result cache.
    /// `None` (or an inert config) keeps the loop byte-identical to the
    /// fault-free reference.
    pub faults: Option<FaultConfig>,
    /// Virtual times at which the function is redeployed: each event
    /// bumps the cache-key generation and drops every cached result of
    /// the old deployment. Empty means never.
    pub redeploys: Vec<Nanos>,
}

impl GatewayFleetConfig {
    /// A gateway run that reproduces the ungated fleet exactly: all
    /// policies disabled, flat workload.
    pub fn passthrough(fleet: FleetConfig) -> GatewayFleetConfig {
        GatewayFleetConfig {
            fleet,
            gateway: GatewayConfig::disabled(),
            idempotent_frac: 0.0,
            payload_universe: 64,
            hot_principal_frac: 0.0,
            diurnal_amplitude: 0.0,
            diurnal_period: Nanos::from_secs(120),
            faults: None,
            redeploys: Vec::new(),
        }
    }

    /// Same workload, different gateway policy.
    pub fn with_gateway(mut self, gateway: GatewayConfig) -> GatewayFleetConfig {
        self.gateway = gateway;
        self
    }
}

/// Outcome of one gateway-fronted fleet run.
#[derive(Clone, Debug)]
pub struct GatewayResult {
    /// The fleet-level result. `completed` counts *served* requests —
    /// backend completions plus cache hits — and the sojourn
    /// distribution includes hits at the cache's `hit_cost`.
    pub fleet: FleetResult,
    /// What the gateway did: hit/miss/eviction, reject/defer and
    /// pre-warm counters.
    pub gateway: GatewayStats,
}

/// Events on the gateway-fronted virtual timeline. `Arrival` and
/// `Ready` mirror the plain fleet loop; the other two exist only when
/// their policy is enabled.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// A client request reaches the gateway.
    Arrival,
    /// A container finished serving + restoring one request.
    Ready(usize),
    /// A pre-warmed or autoscaled container finished cold-starting.
    WarmReady(usize),
    /// A result-cache entry reached its TTL deadline.
    CacheExpire,
    /// A killed request's backoff elapsed (token into the park table).
    Retry(usize),
    /// The function was redeployed: bump the cache generation and drop
    /// the old deployment's cached results.
    Redeploy,
}

/// Drives `requests` arrivals through a gateway in front of a fresh
/// pool of `pool_size` containers — the gateway counterpart of
/// [`crate::fleet::run_fleet`].
#[allow(clippy::too_many_arguments)]
pub fn run_gateway_fleet(
    spec: &FunctionSpec,
    kind: StrategyKind,
    gh: GroundhogConfig,
    pool_size: usize,
    cfg: GatewayFleetConfig,
    requests: usize,
) -> Result<GatewayResult, StrategyError> {
    let mut pool = Pool::build(spec, kind, gh, pool_size, cfg.fleet.seed)?;
    GatewayFleet::new(cfg).run(&mut pool, requests)
}

/// The gateway-fronted fleet driver. Owns the fleet's routing and
/// autoscaling state plus the gateway policy state.
pub struct GatewayFleet {
    fleet: Fleet,
    cfg: GatewayFleetConfig,
    /// Current deployment generation, bumped by `Event::Redeploy`;
    /// cache keys carry it so stale results can never be served.
    generation: u64,
}

impl GatewayFleet {
    /// Creates a driver for `cfg`.
    pub fn new(cfg: GatewayFleetConfig) -> GatewayFleet {
        assert!(
            (0.0..1.0).contains(&cfg.diurnal_amplitude),
            "amplitude must be in [0, 1)"
        );
        if let Some(ac) = &cfg.gateway.admission {
            assert!(
                ac.max_in_flight != Some(0),
                "a zero concurrency ceiling would defer every request forever"
            );
        }
        let mut fleet = Fleet::new(cfg.fleet.clone());
        if let Some(fc) = cfg.faults {
            if fc.is_active() {
                fleet.faults = Some(FaultPlan::new(fc));
            }
        }
        GatewayFleet {
            fleet,
            cfg,
            generation: 0,
        }
    }

    /// Instantaneous offered rate at `t` under the diurnal envelope.
    fn rate_at(&self, t: Nanos, t_start: Nanos) -> f64 {
        let phase = t.saturating_sub(t_start).as_secs_f64() / self.cfg.diurnal_period.as_secs_f64();
        self.cfg.fleet.offered_rps
            * (1.0 + self.cfg.diurnal_amplitude * (std::f64::consts::TAU * phase).sin())
    }

    /// Runs the gateway event loop over `pool` until every arrival is
    /// served or shed. Serial by construction (gateway state is a
    /// global arrival→completion data dependence, like the autoscaler);
    /// host parallelism comes from running sweep *cells* concurrently
    /// — see `gh_bench`'s `gatewaysweep`.
    pub fn run(
        &mut self,
        pool: &mut Pool,
        requests: usize,
    ) -> Result<GatewayResult, StrategyError> {
        let input_kb = pool.spec.input_kb;
        let t_start = Fleet::span_start(pool);
        let baseline = Fleet::baselines(pool);
        let restore_cost = Nanos::from_millis_f64(pool.spec.paper_restore_ms);
        // Mean per-request slot occupancy (execution + restore): the
        // pre-warmer's capacity-planning service time.
        let service_secs = (pool.spec.base_invoker_ms + pool.spec.paper_restore_ms) / 1e3;

        // Same streams and draw order as the serial fleet loop…
        let seed = self.cfg.fleet.seed;
        let mut arrival_rng = DetRng::new(seed ^ 0x09E4_100D);
        let mut principal_rng = DetRng::new(seed ^ 0x7E4A_4175);
        // …plus gateway-only streams, touched only when their feature
        // is on, so a pass-through run never perturbs the base draws.
        let mut payload_rng = DetRng::new(seed ^ 0x6A7E_0001);
        let mut skew_rng = DetRng::new(seed ^ 0x6A7E_0002);
        let mut thin_rng = DetRng::new(seed ^ 0x6A7E_0003);

        let mut cache = self.cfg.gateway.cache.map(ResultCache::new);
        let mut admission = self.cfg.gateway.admission.map(AdmissionControl::new);
        let mut prewarmer = self.cfg.gateway.prewarm.map(|p| Prewarmer::new(p, t_start));

        let mut events: EventQueue<Event> = EventQueue::new();
        let mut depth = DepthTracker::new();
        let mut sojourns = QuantileSketch::new();
        let mut defer: VecDeque<Pending> = VecDeque::new();
        // Park table for killed requests awaiting their backoff: token
        // → (pending, slot it died on). Only touched when faults are
        // armed.
        let mut parked: Vec<Option<(Pending, usize)>> = Vec::new();
        let mut parked_live = 0usize;
        let mut served = 0usize;
        let mut hits = 0u64;
        let mut cache_peak = 0u64;
        let mut generated = 0usize;
        let mut next_id = 1u64;

        if requests == 0 {
            let fleet = self
                .fleet
                .finish(pool, t_start, &baseline, &depth, &sojourns, 0);
            return Ok(GatewayResult {
                fleet,
                gateway: GatewayStats::default(),
            });
        }

        // Redeploys are scheduled up front (the schedule is part of the
        // config, not the workload); an empty schedule adds no events
        // and leaves the timeline untouched. Scheduling them before the
        // first arrival means a redeploy tied with an arrival
        // invalidates before the arrival's lookup.
        for &at in &self.cfg.redeploys {
            events.schedule(at, Event::Redeploy);
        }

        let mut next_arrival = t_start;
        self.advance_arrival(&mut next_arrival, t_start, &mut arrival_rng, &mut thin_rng);
        events.schedule(next_arrival, Event::Arrival);
        generated += 1;

        while let Some((now, ev)) = events.pop() {
            match ev {
                Event::Arrival => {
                    let id = next_id;
                    next_id += 1;
                    let (pidx, principal) = self.draw_principal(&mut principal_rng, &mut skew_rng);
                    let (payload_hash, idempotent) = if self.cfg.idempotent_frac > 0.0 {
                        let p = payload_rng.next_below(self.cfg.payload_universe.max(1));
                        let idem = payload_rng.next_f64() < self.cfg.idempotent_frac;
                        (mix(p), idem)
                    } else {
                        (0, false)
                    };

                    // 1. Result cache: idempotent hits are answered at
                    // the gateway — the backend (and its admission
                    // ceiling) never sees them.
                    let mut resolved = false;
                    if idempotent {
                        if let Some(c) = cache.as_mut() {
                            let key = CacheKey {
                                fn_id: 0,
                                generation: self.generation,
                                payload_hash,
                            };
                            if c.lookup(key, now).is_some() {
                                sojourns.record_nanos(c.config().hit_cost);
                                served += 1;
                                hits += 1;
                                resolved = true;
                            }
                        }
                    }

                    // 2. Admission: token bucket, then the ceiling.
                    if !resolved {
                        let decision = admission
                            .as_mut()
                            .map(|ac| ac.admit(pidx, now))
                            .unwrap_or(Decision::Admit);
                        match decision {
                            Decision::Reject => {}
                            Decision::Defer => defer.push_back(Pending {
                                id,
                                principal,
                                input_kb,
                                arrival: now,
                                payload_hash,
                                idempotent,
                                attempt: 1,
                            }),
                            Decision::Admit => {
                                let idx = self.enter_backend(
                                    pool,
                                    Pending {
                                        id,
                                        principal,
                                        input_kb,
                                        arrival: now,
                                        payload_hash,
                                        idempotent,
                                        attempt: 1,
                                    },
                                    now,
                                    restore_cost,
                                    &mut depth,
                                    admission.as_mut(),
                                    prewarmer.as_mut(),
                                );
                                // Next arrival is scheduled before the
                                // dispatch, matching the serial fleet
                                // loop's schedule-call order exactly.
                                if generated < requests {
                                    self.advance_arrival(
                                        &mut next_arrival,
                                        t_start,
                                        &mut arrival_rng,
                                        &mut thin_rng,
                                    );
                                    events.schedule(next_arrival, Event::Arrival);
                                    generated += 1;
                                }
                                self.dispatch(
                                    pool,
                                    idx,
                                    now,
                                    &mut events,
                                    &mut sojourns,
                                    &mut served,
                                    cache.as_mut(),
                                    &mut cache_peak,
                                    &mut parked,
                                    &mut parked_live,
                                )?;
                                self.scale(
                                    now,
                                    pool,
                                    &mut events,
                                    prewarmer.as_mut(),
                                    service_secs,
                                )?;
                                if self.done(
                                    served,
                                    &admission,
                                    pool,
                                    &defer,
                                    requests,
                                    parked_live,
                                ) {
                                    break;
                                }
                                continue;
                            }
                        }
                    }
                    // Cache-hit / reject / defer paths still drive the
                    // arrival process forward.
                    if generated < requests {
                        self.advance_arrival(
                            &mut next_arrival,
                            t_start,
                            &mut arrival_rng,
                            &mut thin_rng,
                        );
                        events.schedule(next_arrival, Event::Arrival);
                        generated += 1;
                    }
                }
                Event::Ready(idx) => {
                    // One Ready per dispatch: this is the completion
                    // edge the concurrency ceiling releases on.
                    if let Some(ac) = admission.as_mut() {
                        ac.end();
                    }
                    if admission.is_some() {
                        while admission.as_ref().is_some_and(|ac| ac.has_capacity()) {
                            let Some(p) = defer.pop_front() else { break };
                            let slot = self.enter_backend(
                                pool,
                                p,
                                now,
                                restore_cost,
                                &mut depth,
                                admission.as_mut(),
                                prewarmer.as_mut(),
                            );
                            self.dispatch(
                                pool,
                                slot,
                                now,
                                &mut events,
                                &mut sojourns,
                                &mut served,
                                cache.as_mut(),
                                &mut cache_peak,
                                &mut parked,
                                &mut parked_live,
                            )?;
                        }
                    }
                    self.dispatch(
                        pool,
                        idx,
                        now,
                        &mut events,
                        &mut sojourns,
                        &mut served,
                        cache.as_mut(),
                        &mut cache_peak,
                        &mut parked,
                        &mut parked_live,
                    )?;
                    depth.record(pool.queued());
                }
                Event::WarmReady(idx) => {
                    // A cold start completed (pre-warm or autoscale):
                    // serve anything already routed to the new slot.
                    self.dispatch(
                        pool,
                        idx,
                        now,
                        &mut events,
                        &mut sojourns,
                        &mut served,
                        cache.as_mut(),
                        &mut cache_peak,
                        &mut parked,
                        &mut parked_live,
                    )?;
                    depth.record(pool.queued());
                }
                Event::CacheExpire => {
                    if let Some(c) = cache.as_mut() {
                        c.expire_due(now);
                    }
                }
                Event::Retry(token) => {
                    // A killed request's backoff elapsed: re-enter the
                    // backend. The retry was admitted on its first
                    // attempt and keeps its admission (it re-begins the
                    // ceiling it released when the crash's Ready edge
                    // fired), but never re-pays the token bucket.
                    let (p, died_idx) = parked[token].take().expect("retry token fired twice");
                    parked_live -= 1;
                    let reroute = self
                        .fleet
                        .faults
                        .map(|pl| pl.config().retry.reroute)
                        .unwrap_or(false);
                    let idx = if reroute {
                        self.fleet.router.route_avoiding(
                            now,
                            &p.principal,
                            restore_cost,
                            &pool.slots,
                            Some(died_idx),
                        )
                    } else {
                        died_idx
                    };
                    pool.slots[idx].queue.push(p);
                    depth.record(pool.queued());
                    if let Some(ac) = admission.as_mut() {
                        ac.begin();
                    }
                    self.dispatch(
                        pool,
                        idx,
                        now,
                        &mut events,
                        &mut sojourns,
                        &mut served,
                        cache.as_mut(),
                        &mut cache_peak,
                        &mut parked,
                        &mut parked_live,
                    )?;
                }
                Event::Redeploy => {
                    // New code is live: results produced by the old
                    // deployment must never be served again. Bumping
                    // the generation makes stale entries unreachable
                    // (even in-flight fills from old-code responses);
                    // the sweep reclaims their bytes immediately.
                    self.generation += 1;
                    if let Some(c) = cache.as_mut() {
                        c.redeploy(0);
                    }
                }
            }
            if self.done(served, &admission, pool, &defer, requests, parked_live) {
                break;
            }
        }

        let rejected = admission.as_ref().map(|a| a.rejected).unwrap_or(0);
        debug_assert_eq!(
            served as u64 + rejected + self.fleet.fault_stats.abandoned,
            requests as u64,
            "every arrival must be served, shed, or abandoned"
        );

        let mut gw = GatewayStats {
            served: served as u64,
            rejected,
            deferred: admission.as_ref().map(|a| a.deferred).unwrap_or(0),
            prewarm_spawns: prewarmer.as_ref().map(|p| p.spawned).unwrap_or(0),
            cache_peak_bytes: cache_peak,
            ..GatewayStats::default()
        };
        if let Some(c) = &cache {
            gw.absorb_cache(&c.stats);
        }
        debug_assert_eq!(gw.cache_hits, hits);
        let fleet = self
            .fleet
            .finish(pool, t_start, &baseline, &depth, &sojourns, served);
        Ok(GatewayResult { fleet, gateway: gw })
    }

    /// Advances the arrival cursor past the next (possibly thinned)
    /// arrival. Amplitude 0 is a plain exponential gap — bit-identical
    /// to the fleet loop's `poisson_gap` sequence.
    fn advance_arrival(
        &self,
        cursor: &mut Nanos,
        t_start: Nanos,
        arrival_rng: &mut DetRng,
        thin_rng: &mut DetRng,
    ) {
        if self.cfg.diurnal_amplitude == 0.0 {
            *cursor += poisson_gap(self.cfg.fleet.offered_rps, arrival_rng);
            return;
        }
        let rate_max = self.cfg.fleet.offered_rps * (1.0 + self.cfg.diurnal_amplitude);
        loop {
            *cursor += poisson_gap(rate_max, arrival_rng);
            let accept = self.rate_at(*cursor, t_start) / rate_max;
            if thin_rng.next_f64() < accept {
                return;
            }
        }
    }

    /// Draws the issuing principal: the fleet's uniform stream, with an
    /// optional hot-principal skew on its own stream.
    fn draw_principal(&self, principal_rng: &mut DetRng, skew_rng: &mut DetRng) -> (u64, String) {
        if self.cfg.fleet.principals <= 1 {
            return (0, "client".to_string());
        }
        let idx = if self.cfg.hot_principal_frac > 0.0
            && skew_rng.next_f64() < self.cfg.hot_principal_frac
        {
            0
        } else {
            principal_rng.next_below(self.cfg.fleet.principals as u64)
        };
        (idx, format!("user-{idx}"))
    }

    /// Routes one admitted request into the pool: route, enqueue,
    /// depth sample, ceiling/pre-warm bookkeeping. Returns the slot.
    #[allow(clippy::too_many_arguments)]
    fn enter_backend(
        &mut self,
        pool: &mut Pool,
        pending: Pending,
        now: Nanos,
        restore_cost: Nanos,
        depth: &mut DepthTracker,
        admission: Option<&mut AdmissionControl>,
        prewarmer: Option<&mut Prewarmer>,
    ) -> usize {
        let idx = self
            .fleet
            .router
            .route(now, &pending.principal, restore_cost, &pool.slots);
        pool.slots[idx].queue.push(pending);
        depth.record(pool.queued());
        if let Some(ac) = admission {
            ac.begin();
        }
        if let Some(pw) = prewarmer {
            pw.observe(now);
        }
        idx
    }

    /// Dispatches `idx` if it is clean and has queued work; records the
    /// sojourn, schedules the completion event, and fills the result
    /// cache from idempotent responses. With faults armed, the head may
    /// instead die mid-request (no response, no cache fill; the Ready
    /// edge still fires at recovery, releasing the ceiling and draining
    /// defers) or fail its restore (the completion stands, readiness is
    /// pushed out by a cold start).
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        pool: &mut Pool,
        idx: usize,
        now: Nanos,
        events: &mut EventQueue<Event>,
        sojourns: &mut QuantileSketch,
        served: &mut usize,
        cache: Option<&mut ResultCache>,
        cache_peak: &mut u64,
        parked: &mut Vec<Option<(Pending, usize)>>,
        parked_live: &mut usize,
    ) -> Result<(), StrategyError> {
        let plan = self.fleet.faults;
        let head = match plan {
            Some(_) if pool.slots[idx].idle_at(now) => {
                pool.slots[idx].queue.peek().map(|p| (p.id, p.attempt))
            }
            _ => None,
        };
        if let (Some(pl), Some((id, attempt))) = (plan, head) {
            if let Some(frac) = pl.death(id, attempt) {
                let (mut pending, ready) = pool.slots[idx]
                    .crash(now, frac)
                    .expect("idle slot with a queued head");
                let st = &mut self.fleet.fault_stats;
                st.deaths += 1;
                if pl.death_after_commit(id, attempt) {
                    st.duplicates += 1;
                }
                if attempt < pl.max_attempts() {
                    st.retries += 1;
                    pending.attempt += 1;
                    let backoff_at = now + pl.backoff(attempt);
                    let retry_at = if pl.config().retry.reroute {
                        backoff_at
                    } else {
                        backoff_at.max(ready)
                    };
                    let token = parked.len();
                    parked.push(Some((pending, idx)));
                    *parked_live += 1;
                    events.schedule(retry_at, Event::Retry(token));
                } else {
                    st.abandoned += 1;
                }
                events.schedule(ready, Event::Ready(idx));
                return Ok(());
            }
        }
        if let Some(d) = pool.slots[idx].dispatch(now)? {
            sojourns.record_nanos(d.sojourn);
            *served += 1;
            let mut ready_at = d.ready_at;
            if let (Some(pl), Some((id, attempt))) = (plan, head) {
                if pl.restore_failure(id, attempt) {
                    self.fleet.fault_stats.restore_failures += 1;
                    ready_at = pool.slots[idx].fail_restore();
                }
            }
            events.schedule(ready_at, Event::Ready(idx));
            if d.idempotent {
                if let Some(c) = cache {
                    let key = CacheKey {
                        fn_id: 0,
                        generation: self.generation,
                        payload_hash: d.payload_hash,
                    };
                    // The fill becomes visible when the response leaves
                    // the container; its TTL runs from that instant.
                    c.insert(key, d.output_kb, d.resp_at);
                    if let Some(at) = c.next_expiry() {
                        // One expiry event per insertion keeps the
                        // sweep exact without a timer wheel; stale
                        // events sweep nothing.
                        events.schedule(at.max(d.resp_at), Event::CacheExpire);
                    }
                    *cache_peak = (*cache_peak).max(c.bytes());
                }
            }
        }
        Ok(())
    }

    /// One scaling observation: the pre-warmer first (it is the point
    /// of this module), else the reactive autoscaler.
    fn scale(
        &mut self,
        now: Nanos,
        pool: &mut Pool,
        events: &mut EventQueue<Event>,
        prewarmer: Option<&mut Prewarmer>,
        service_secs: f64,
    ) -> Result<(), StrategyError> {
        if let Some(pw) = prewarmer {
            if pw.want_grow(now, pool.active(), service_secs) {
                let (idx, ready) = pool.grow(now)?;
                events.schedule(ready, Event::WarmReady(idx));
            }
            return Ok(());
        }
        let Some(scaler) = self.fleet.autoscaler.as_mut() else {
            return Ok(());
        };
        match scaler.observe(now, pool) {
            Some(ScaleAction::Grow) => {
                let (idx, ready) = pool.grow(now)?;
                events.schedule(ready, Event::WarmReady(idx));
                scaler.applied(now, ScaleAction::Grow);
            }
            Some(ScaleAction::Retire(idx)) => {
                pool.retire(idx);
                scaler.applied(now, ScaleAction::Retire(idx));
            }
            None => {}
        }
        Ok(())
    }

    /// The run is over when every arrival is resolved (served, shed, or
    /// abandoned after its retry budget) and nothing waits in a queue,
    /// the defer buffer, or the retry park table.
    fn done(
        &self,
        served: usize,
        admission: &Option<AdmissionControl>,
        pool: &Pool,
        defer: &VecDeque<Pending>,
        requests: usize,
        parked_live: usize,
    ) -> bool {
        let rejected = admission.as_ref().map(|a| a.rejected).unwrap_or(0) as usize;
        let abandoned = self.fleet.fault_stats.abandoned as usize;
        served + rejected + abandoned == requests
            && pool.queued() == 0
            && defer.is_empty()
            && parked_live == 0
    }
}

/// [`run_gateway_fleet`] but executing the *ungated* fleet reference on
/// the same pool construction — the differential oracle's baseline.
#[allow(clippy::too_many_arguments)]
pub fn run_ungated_reference(
    spec: &FunctionSpec,
    kind: StrategyKind,
    gh: GroundhogConfig,
    pool_size: usize,
    fleet: FleetConfig,
    requests: usize,
) -> Result<FleetResult, StrategyError> {
    let mut pool = Pool::build(spec, kind, gh, pool_size, fleet.seed)?;
    Fleet::new(fleet).run_with(&mut pool, requests, ExecMode::Serial)
}
