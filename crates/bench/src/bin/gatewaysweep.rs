//! Extension experiment (E19): gateway policy sweep — result-cache hit
//! ratio × principal skew × predictive pre-warming over one overloaded
//! fleet.
//!
//! Quantifies the knobs PR 8 adds in front of the fleet: how much
//! idempotent traffic the cache must see before it pays, what a hot
//! principal does to token-bucket sheds, and whether the pre-warmer's
//! diurnal projection still helps once admission is throttling arrivals.
//!
//! ```text
//! cargo run --release -p gh-bench --bin gatewaysweep            # parallel cells
//! cargo run --release -p gh-bench --bin gatewaysweep -- --serial
//! ```
//!
//! Every cell is a pure function of its config (own kernel, own seed,
//! virtual time only), so the grid parallelizes over OS threads via
//! [`run_cells`] and the CSV is byte-identical to `--serial` — the CI
//! determinism matrix diffs exactly that.

use gh_bench::harness::{run_cells, serial_requested};
use gh_bench::{smoke, write_csv};
use gh_faas::fleet::{AutoscaleConfig, FleetConfig, RoutePolicy};
use gh_faas::gateway::{run_gateway_fleet, GatewayFleetConfig, GatewayResult};
use gh_gateway::admission::AdmissionConfig;
use gh_gateway::cache::CacheConfig;
use gh_gateway::prewarm::PrewarmConfig;
use gh_gateway::GatewayConfig;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use gh_sim::Nanos;
use groundhog_core::GroundhogConfig;

const SEED: u64 = 83;
/// Shared container-memory budget: reactive and predictive cells may
/// both grow the pool to this size, never past it.
const MAX_POOL: usize = 4;

#[derive(Clone, Copy)]
struct Cell {
    idempotent_frac: f64,
    hot_principal_frac: f64,
    prewarm: bool,
}

fn run_cell(cell: &Cell, requests: usize) -> GatewayResult {
    let spec = gh_functions::catalog::by_name("fannkuch (p)").expect("catalog");
    let mut fleet = FleetConfig::fixed(RoutePolicy::LeastLoaded, 450.0, SEED).with_principals(8);
    let mut gateway = GatewayConfig::builder()
        .cache(CacheConfig::default_for_ttl(Nanos::from_secs(30)))
        .admission(AdmissionConfig {
            rate_per_sec: 90.0,
            burst: 45,
            max_in_flight: Some(64),
        });
    if cell.prewarm {
        gateway = gateway.prewarm(PrewarmConfig {
            diurnal_amplitude: 0.6,
            diurnal_period: Nanos::from_secs(20),
            ..PrewarmConfig::flat(Nanos::from_secs(2), MAX_POOL)
        });
    } else {
        fleet.autoscale = Some(AutoscaleConfig {
            min_size: 1,
            max_size: MAX_POOL,
            ..AutoscaleConfig::default()
        });
    }
    let cfg = GatewayFleetConfig {
        idempotent_frac: cell.idempotent_frac,
        payload_universe: 12,
        hot_principal_frac: cell.hot_principal_frac,
        diurnal_amplitude: 0.6,
        diurnal_period: Nanos::from_secs(20),
        ..GatewayFleetConfig::passthrough(fleet)
    }
    .with_gateway(gateway.build());
    run_gateway_fleet(
        &spec,
        StrategyKind::Gh,
        GroundhogConfig::gh(),
        1,
        cfg,
        requests,
    )
    .expect("gateway run")
}

fn main() {
    let requests: usize = if smoke() { 2_000 } else { 8_000 };
    let mut cells = Vec::new();
    for &idempotent_frac in &[0.0, 0.25, 0.5] {
        for &hot_principal_frac in &[0.0, 0.5] {
            for &prewarm in &[false, true] {
                cells.push(Cell {
                    idempotent_frac,
                    hot_principal_frac,
                    prewarm,
                });
            }
        }
    }
    println!(
        "== E19 — gateway sweep: {requests} requests, diurnal A=0.6/20s, \
         cache TTL 30s, bucket 90 r/s burst 45, pool budget {MAX_POOL} ==\n"
    );
    let results = run_cells(&cells, serial_requested(), |c| run_cell(c, requests));
    let mut table = TextTable::new(&[
        "idem frac",
        "hot frac",
        "prewarm",
        "served",
        "hit ratio",
        "rejected",
        "deferred",
        "goodput r/s",
        "p99 ms",
        "spawns",
    ]);
    for (cell, r) in cells.iter().zip(&results) {
        let spawns = if cell.prewarm {
            r.gateway.prewarm_spawns
        } else {
            r.fleet.stats.spawned as u64
        };
        table.row_owned(vec![
            format!("{:.2}", cell.idempotent_frac),
            format!("{:.2}", cell.hot_principal_frac),
            if cell.prewarm { "yes" } else { "no" }.to_string(),
            format!("{}", r.gateway.served),
            format!(
                "{:.2}",
                r.gateway.cache_hits as f64 / (r.gateway.served as f64).max(1.0)
            ),
            format!("{}", r.gateway.rejected),
            format!("{}", r.gateway.deferred),
            format!("{:.1}", r.fleet.goodput_rps),
            format!("{:.2}", r.fleet.p99_ms),
            format!("{spawns}"),
        ]);
    }
    println!("{}", table.render());
    write_csv("gatewaysweep", &table);
    println!(
        "Expected shape: hit ratio climbs with the idempotent fraction and lifts \
         goodput roughly in proportion (hits leave the backend untouched); a hot \
         principal concentrates arrivals on one token bucket, so sheds rise while \
         the cold principals sail through; pre-warm cells spend the same pool \
         budget earlier in each diurnal upswing and shave the p99 queueing the \
         reactive cells only react to."
    );
}
