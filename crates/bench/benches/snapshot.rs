//! Criterion bench: snapshot cost versus process footprint (§5.5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gh_mem::{Perms, Taint, Touch, VmaKind};
use gh_proc::Kernel;
use groundhog_core::snapshot::Snapshotter;
use groundhog_core::track::make_tracker;
use groundhog_core::TrackerKind;

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_vs_footprint");
    group.sample_size(10);
    for pages in [1_024u64, 8_192, 65_536] {
        group.bench_with_input(BenchmarkId::from_parameter(pages), &pages, |b, &pages| {
            b.iter_with_setup(
                || {
                    let mut kernel = Kernel::boot();
                    let pid = kernel.spawn("snap");
                    kernel
                        .run_charged(pid, |p, frames| {
                            let r = p.mem.mmap(pages, Perms::RW, VmaKind::Anon).unwrap();
                            for vpn in r.iter() {
                                p.mem
                                    .touch(vpn, Touch::WriteWord(7), Taint::Clean, frames)
                                    .unwrap();
                            }
                        })
                        .unwrap();
                    (kernel, pid)
                },
                |(mut kernel, pid)| {
                    let mut tracker = make_tracker(TrackerKind::SoftDirty);
                    black_box(Snapshotter::take(&mut kernel, pid, tracker.as_mut()).unwrap())
                },
            )
        });
    }
    group.finish();
}

/// Run-based capture alone (what `Snapshotter::take` does per present
/// page after the refactor: one incref per page, one run per extent).
fn bench_capture_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("capture_frame_runs");
    group.sample_size(10);
    for pages in [8_192u64, 262_144] {
        let mut kernel = Kernel::boot();
        let pid = kernel.spawn("cap");
        kernel
            .run_charged(pid, |p, frames| {
                let r = p.mem.mmap(pages, Perms::RW, VmaKind::Anon).unwrap();
                for vpn in r.iter() {
                    p.mem
                        .touch(vpn, Touch::WriteWord(7), Taint::Clean, frames)
                        .unwrap();
                }
            })
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(pages), &pages, |b, _| {
            b.iter(|| {
                let (proc, frames) = kernel.mem_ctx(pid).unwrap();
                let runs = black_box(proc.mem.capture_frame_runs(frames));
                // Release immediately so iterations don't accumulate refs.
                for (_, run) in &runs {
                    for &id in run {
                        frames.decref(id);
                    }
                }
                runs.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_snapshot, bench_capture_runs);
criterion_main!(benches);
