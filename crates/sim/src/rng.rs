//! Deterministic random number generation.
//!
//! Experiments must be exactly reproducible run-to-run, so all randomness
//! flows through [`DetRng`], a seeded xoshiro256**-family generator. The
//! noise helpers model measurement jitter (the ± columns of Table 1) without
//! compromising determinism.

/// A small, fast, deterministic RNG (xoshiro256**).
///
/// Not cryptographically secure; used only for workload placement and
/// measurement-noise modelling.
///
/// # Examples
///
/// ```
/// use gh_sim::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

/// SplitMix64, used to seed the main generator from a single `u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives an independent child generator, e.g. one per benchmark so
    /// that adding benchmarks does not perturb existing streams.
    pub fn fork(&mut self, label: u64) -> DetRng {
        DetRng::new(self.next_u64() ^ label.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded sampling (Lemire); slight bias is fine for
        // noise modelling.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal variate (Box–Muller, one value per call).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (1.0 - self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Multiplicative lognormal noise factor with the given coefficient of
    /// variation; mean is approximately 1.
    ///
    /// Used to model run-to-run measurement jitter (the ±σ columns of
    /// Table 1 and the error bars of Fig. 7).
    pub fn lognormal_factor(&mut self, cov: f64) -> f64 {
        if cov <= 0.0 {
            return 1.0;
        }
        let sigma2 = (1.0 + cov * cov).ln();
        let sigma = sigma2.sqrt();
        let mu = -0.5 * sigma2; // E[exp(N(mu, sigma^2))] = 1
        (mu + sigma * self.next_gaussian()).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        for i in (1..n).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices out of `n` (k ≤ n), in sorted order.
    ///
    /// Used to pick which pages a function invocation dirties.
    pub fn sample_indices(&mut self, n: u64, k: u64) -> Vec<u64> {
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        // Floyd's algorithm for distinct sampling.
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.next_below(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = DetRng::new(99);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn bounded_sampling_in_range() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn lognormal_factor_centres_on_one() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.lognormal_factor(0.3)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert_eq!(r.lognormal_factor(0.0), 1.0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = DetRng::new(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn sample_indices_distinct_sorted_bounded() {
        let mut r = DetRng::new(17);
        let idx = r.sample_indices(100, 30);
        assert_eq!(idx.len(), 30);
        for w in idx.windows(2) {
            assert!(w[0] < w[1], "sorted + distinct");
        }
        assert!(*idx.last().unwrap() < 100);
        // k > n clamps.
        assert_eq!(r.sample_indices(5, 10).len(), 5);
        assert!(r.sample_indices(5, 0).is_empty());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(19);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
