//! Host-side scaling of parallel fleet execution (`Fleet::run_with`
//! sharded across worker threads) vs the serial reference.
//!
//! The rig drives the same 16-container, 10⁵-request round-robin run
//! twice — [`ExecMode::Serial`] and [`ExecMode::Parallel`] at
//! [`THREADS`] workers — over identically-seeded pools, timing only the
//! run (pool construction is paid outside the clock on both sides).
//! Result equality is asserted after the measurement through the
//! `{:?}` fingerprint (shortest-round-trip floats, so any differing bit
//! pattern shows), making the rig double as a release-mode oracle on
//! top of `gh-faas`'s differential tests.
//!
//! Gate design matches `scaling.rs`: the **speedup ratio** is a
//! same-machine quotient (machine-independent, gated, capped at 8 so
//! the 10% gate tracks the ≥2x acceptance floor rather than jitter in
//! the typical ratio); raw ns per run is machine-dependent and
//! published as gate-exempt `info_` metrics plus
//! `results/scaling_fleet.csv`.

use std::time::Instant;

use gh_faas::fleet::{ExecMode, Fleet, FleetConfig, Pool, RoutePolicy};
use gh_functions::catalog::by_name;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use groundhog_core::GroundhogConfig;

/// Containers in the measured pool.
pub const POOL: usize = 16;
/// Requests per measured run.
pub const REQUESTS: usize = 100_000;
/// Worker threads on the parallel side.
pub const THREADS: usize = 8;
/// Arrival process seed.
const SEED: u64 = 42;
/// Offered load, requests/second — high enough to keep all containers
/// busy without unbounded queueing.
const OFFERED_RPS: f64 = 4000.0;

/// Timing samples per mode (`GH_FLEET_ITERS` overrides; default 3).
/// The gated speedup is min(serial)/min(parallel): a single-shot
/// measurement on a noisy single-core host occasionally swings past
/// the perf gate's 10% band, while the minimum converges to the
/// undisturbed cost (same treatment as `cluster_scaling::iters`).
/// Every extra sample doubles as a free repeat-determinism assert.
pub fn iters() -> u32 {
    std::env::var("GH_FLEET_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Wall-clock of the two execution modes over the same run.
pub struct FleetScalingReport {
    /// Requests per measured run.
    pub requests: usize,
    /// Containers in the pool.
    pub pool: usize,
    /// Worker threads on the parallel side.
    pub threads: usize,
    /// ns for the serial run.
    pub serial_ns: f64,
    /// ns for the parallel run.
    pub par_ns: f64,
}

impl FleetScalingReport {
    /// Serial / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_ns / self.par_ns.max(1.0)
    }
}

fn timed_run(mode: ExecMode) -> (f64, String) {
    let spec = by_name("fannkuch (p)").expect("catalog");
    let cfg = FleetConfig::fixed(RoutePolicy::RoundRobin, OFFERED_RPS, SEED);
    let mut pool =
        Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), POOL, SEED).expect("pool");
    let mut fleet = Fleet::new(cfg);
    let t0 = Instant::now();
    let result = fleet.run_with(&mut pool, REQUESTS, mode).expect("run");
    let ns = t0.elapsed().as_nanos() as f64;
    (ns, format!("{result:?}"))
}

/// Best-of-`iters` wrapper around [`timed_run`]: minimum wall-clock
/// over the samples, with repeat runs asserted bit-identical along the
/// way (every sample is also a determinism check for free).
fn timed_run_best(mode: ExecMode, iters: u32) -> (f64, String) {
    let mut best = f64::INFINITY;
    let mut reference: Option<String> = None;
    for _ in 0..iters {
        let (ns, fp) = timed_run(mode);
        best = best.min(ns);
        match &reference {
            Some(ref_fp) => assert_eq!(
                ref_fp, &fp,
                "repeat fleet run diverged from its own first sample"
            ),
            None => reference = Some(fp),
        }
    }
    (best, reference.expect("iters >= 1"))
}

/// Measures both modes and asserts result equality.
pub fn run() -> FleetScalingReport {
    let iters = iters();
    let (serial_ns, serial_fp) = timed_run_best(ExecMode::Serial, iters);
    let (par_ns, par_fp) = timed_run_best(ExecMode::Parallel { threads: THREADS }, iters);
    assert_eq!(
        serial_fp, par_fp,
        "parallel fleet run diverged from the serial reference"
    );
    FleetScalingReport {
        requests: REQUESTS,
        pool: POOL,
        threads: THREADS,
        serial_ns,
        par_ns,
    }
}

/// Renders the report for the console and `results/scaling_fleet.csv`.
pub fn render(r: &FleetScalingReport) -> TextTable {
    let mut t = TextTable::new(&[
        "pool",
        "requests",
        "threads",
        "serial ms",
        "parallel ms",
        "speedup",
    ]);
    t.row_owned(vec![
        r.pool.to_string(),
        r.requests.to_string(),
        r.threads.to_string(),
        format!("{:.1}", r.serial_ns / 1e6),
        format!("{:.1}", r.par_ns / 1e6),
        format!("{:.2}x", r.speedup()),
    ]);
    t
}
