//! Simulated processes, threads, ptrace and `/proc`.
//!
//! This crate layers the POSIX process abstractions Groundhog depends on
//! over the [`gh_mem`] substrate:
//!
//! - multi-threaded [`process::Process`]es with per-thread register files;
//! - a machine-wide [`kernel::Kernel`] owning the frame table, the process
//!   table, the virtual clock and the calibrated cost model — every fault
//!   and every privileged operation charges virtual time here;
//! - a [`ptrace::PtraceSession`] exposing exactly the operations the
//!   paper's manager uses (§4.2–§4.4): interrupting all threads, reading
//!   and writing registers, reading `/proc/pid/maps` and the pagemap,
//!   injecting `brk`/`mmap`/`munmap`/`madvise`/`mprotect` syscalls, bulk
//!   reading/writing memory, clearing soft-dirty bits and detaching;
//! - POSIX-faithful [`kernel::Kernel::fork`]: only the calling thread is
//!   cloned (which is precisely why fork-based isolation cannot handle
//!   multi-threaded runtimes, §3.2), with CoW page sharing and a TLB-cold
//!   child.

pub mod kernel;
pub mod process;
pub mod ptrace;
pub mod registers;
pub mod syscall;

pub use kernel::{Kernel, KernelConfig};
pub use process::{Pid, Process, ProcessState, Thread, Tid};
pub use ptrace::{PtraceError, PtraceSession};
pub use registers::RegisterSet;
pub use syscall::Syscall;
