//! Benchmark specifications: measured properties + paper reference values.

use gh_runtime::RuntimeKind;

/// Which benchmark suite a function comes from (§5.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Suite {
    /// pyperformance \[48\] — 22 Python functions.
    PyPerformance,
    /// PolyBench/C \[30\] — 23 C functions.
    PolyBench,
    /// FaaSProfiler \[38\] — 6 Python + 7 Node.js functions.
    FaaSProfiler,
}

impl Suite {
    /// Display name as used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            Suite::PyPerformance => "pyperformance",
            Suite::PolyBench => "PolyBench",
            Suite::FaaSProfiler => "FaaSProfiler",
        }
    }
}

/// Paper-measured FAASM reference values (Table 1, faasm columns). Only
/// pyperformance and PolyBench compile to WebAssembly (§5.3.3).
#[derive(Clone, Copy, Debug)]
pub struct FaasmRef {
    /// End-to-end latency (ms).
    pub e2e_ms: f64,
    /// Invoker latency (ms).
    pub invoker_ms: f64,
    /// Peak throughput (req/s).
    pub xput: f64,
}

/// Behavioural anomalies the paper calls out.
#[derive(Clone, Copy, Debug, Default)]
pub struct BehaviorFlags {
    /// logging(p): leaks memory every invocation, slowing down under
    /// container reuse; Groundhog's rollback removes the leak (§5.3.1,
    /// the "GH faster than BASE" anomaly).
    pub leak: bool,
    /// img-resize(n): time-driven V8 GC state is rewound by restoration,
    /// so post-restore invocations re-trigger collection (§5.3.1).
    pub gc_sensitive: bool,
}

/// One benchmark function: measured properties (used to drive the
/// simulation) plus the paper's reported results (used only for
/// validation and EXPERIMENTS.md comparisons — never fed back into the
/// mechanism).
#[derive(Clone, Debug)]
pub struct FunctionSpec {
    /// Paper name including the language suffix, e.g. `"chaos (p)"`.
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Language runtime.
    pub runtime: RuntimeKind,
    /// Baseline invoker latency, ms (Table 3).
    pub base_invoker_ms: f64,
    /// Baseline end-to-end latency, ms (Table 1).
    pub base_e2e_ms: f64,
    /// Baseline peak throughput at 4 cores, req/s (Table 3).
    pub base_xput: f64,
    /// Mapped address space, thousands of pages (Table 3 `#pages`).
    pub total_kpages: f64,
    /// Pages written per activation, thousands (Table 3 `#restored`).
    pub written_kpages: f64,
    /// Request payload, KiB (§5.3.1 gives json=200 KiB, img-resize=76 KiB).
    pub input_kb: u64,
    /// Response payload, KiB.
    pub output_kb: u64,
    /// Paper: GH invoker latency, ms (Table 3) — validation only.
    pub paper_gh_invoker_ms: f64,
    /// Paper: GH restore time, ms (Table 3) — validation only.
    pub paper_restore_ms: f64,
    /// Paper: GH peak throughput, req/s (Table 3) — validation only.
    pub paper_gh_xput: f64,
    /// Paper: in-function faults, thousands (Table 3 `#faults`).
    pub paper_faults_k: f64,
    /// Paper: FAASM measurements, when the function compiles to wasm.
    pub faasm: Option<FaasmRef>,
    /// Anomaly flags.
    pub behavior: BehaviorFlags,
}

impl FunctionSpec {
    /// Pages written per activation (absolute).
    pub fn written_pages(&self) -> u64 {
        (self.written_kpages * 1000.0).round() as u64
    }

    /// Mapped pages (absolute).
    pub fn total_pages(&self) -> u64 {
        (self.total_kpages * 1000.0).round() as u64
    }

    /// Baseline platform delay (E2E minus invoker): the FaaS platform
    /// components Groundhog does not touch (§5.3.1: "significant platform
    /// overheads ... are the same in the baseline and Groundhog").
    pub fn platform_delay_ms(&self) -> f64 {
        (self.base_e2e_ms - self.base_invoker_ms).max(0.0)
    }

    /// Baseline per-request saturation overhead implied by Table 3:
    /// with 4 containers on 4 cores, `xput = 4 / (invoker + overhead)`.
    pub fn saturation_overhead_ms(&self, cores: u32) -> f64 {
        if self.base_xput <= 0.0 {
            // logging(p) degrades to zero throughput at saturation; its
            // clean-state overhead is like its suite siblings'.
            return 3.0;
        }
        (cores as f64 * 1000.0 / self.base_xput - self.base_invoker_ms).max(0.0)
    }

    /// The fraction of the mapped address space written per activation
    /// (§3.1's "small write sets" statistic).
    pub fn write_set_fraction(&self) -> f64 {
        if self.total_kpages <= 0.0 {
            0.0
        } else {
            self.written_kpages / self.total_kpages
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FunctionSpec {
        FunctionSpec {
            name: "test (p)",
            suite: Suite::PyPerformance,
            runtime: RuntimeKind::Python,
            base_invoker_ms: 10.0,
            base_e2e_ms: 36.0,
            base_xput: 100.0,
            total_kpages: 6.0,
            written_kpages: 0.3,
            input_kb: 1,
            output_kb: 1,
            paper_gh_invoker_ms: 10.5,
            paper_restore_ms: 4.0,
            paper_gh_xput: 95.0,
            paper_faults_k: 0.3,
            faasm: None,
            behavior: BehaviorFlags::default(),
        }
    }

    #[test]
    fn derived_quantities() {
        let s = spec();
        assert_eq!(s.written_pages(), 300);
        assert_eq!(s.total_pages(), 6000);
        assert!((s.platform_delay_ms() - 26.0).abs() < 1e-9);
        assert!((s.write_set_fraction() - 0.05).abs() < 1e-9);
        // 4 cores, 100 r/s → 40 ms/request budget → 30 ms overhead.
        assert!((s.saturation_overhead_ms(4) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn zero_xput_overhead_fallback() {
        let mut s = spec();
        s.base_xput = 0.0;
        assert!(s.saturation_overhead_ms(4) > 0.0);
    }

    #[test]
    fn suite_labels() {
        assert_eq!(Suite::PyPerformance.label(), "pyperformance");
        assert_eq!(Suite::PolyBench.label(), "PolyBench");
        assert_eq!(Suite::FaaSProfiler.label(), "FaaSProfiler");
    }
}
