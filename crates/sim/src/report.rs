//! Plain-text rendering of experiment output: aligned tables, normalized
//! bar charts, and simple line plots.
//!
//! The benchmark binaries regenerate the paper's figures as terminal
//! output plus CSV; this module holds the shared rendering code.

use std::fmt::Write as _;

/// Column alignment for [`TextTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// An aligned, plain-text table builder.
///
/// # Examples
///
/// ```
/// use gh_sim::report::TextTable;
///
/// let mut t = TextTable::new(&["benchmark", "base (ms)", "GH (ms)"]);
/// t.row(&["pyaes (p)", "4672.0", "4699.0"]);
/// let s = t.render();
/// assert!(s.contains("pyaes"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn row(&mut self, cells: &[&str]) {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with the first column left-aligned and the rest
    /// right-aligned (the common numeric layout).
    pub fn render(&self) -> String {
        let aligns: Vec<Align> = (0..self.headers.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        self.render_aligned(&aligns)
    }

    /// Renders with explicit per-column alignment.
    pub fn render_aligned(&self, aligns: &[Align]) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, &w) in widths.iter().enumerate().take(ncols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let a = aligns.get(i).copied().unwrap_or(Align::Right);
                if i > 0 {
                    out.push_str("  ");
                }
                match a {
                    Align::Left => {
                        let _ = write!(out, "{cell:<w$}");
                    }
                    Align::Right => {
                        let _ = write!(out, "{cell:>w$}");
                    }
                }
            }
            // Trim trailing spaces for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish; quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders a horizontal bar of `value` relative to a scale where `full`
/// maps to `width` characters; used for the normalized charts of
/// Fig. 4/Fig. 5.
pub fn bar(value: f64, full: f64, width: usize) -> String {
    if full <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let frac = (value / full).clamp(0.0, 1.0);
    let n = (frac * width as f64).round() as usize;
    "█".repeat(n)
}

/// A simple ASCII line plot of one or more named series over a shared x
/// axis, for the microbenchmark figures (Fig. 3).
pub struct AsciiPlot {
    width: usize,
    height: usize,
}

impl AsciiPlot {
    /// Creates a plot canvas of the given character dimensions.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width: width.max(16),
            height: height.max(6),
        }
    }

    /// Renders `series` (name, points) with shared axes. Points are
    /// `(x, y)` pairs; x values need not be uniform.
    pub fn render(&self, series: &[(&str, Vec<(f64, f64)>)]) -> String {
        let markers = ['*', 'o', '+', 'x', '#', '@'];
        let all: Vec<(f64, f64)> = series
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied())
            .collect();
        if all.is_empty() {
            return String::from("(no data)\n");
        }
        let xmin = all.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let xmax = all.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let ymin = 0.0f64;
        let ymax = all
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(1e-9);
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, (_, pts)) in series.iter().enumerate() {
            let m = markers[si % markers.len()];
            for &(x, y) in pts {
                let xf = if xmax > xmin {
                    (x - xmin) / (xmax - xmin)
                } else {
                    0.0
                };
                let yf = ((y - ymin) / (ymax - ymin)).clamp(0.0, 1.0);
                let col = (xf * (self.width - 1) as f64).round() as usize;
                let row = self.height - 1 - (yf * (self.height - 1) as f64).round() as usize;
                grid[row][col] = m;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "y: 0 .. {ymax:.1}   x: {xmin:.0} .. {xmax:.0}");
        for (si, (name, _)) in series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", markers[si % markers.len()], name);
        }
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_headers() {
        let mut t = TextTable::new(&["name", "val"]);
        t.row(&["a", "1.0"]);
        t.row(&["longer-name", "23.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        // Right alignment: "1.0" should end at same column as "23.5".
        assert_eq!(lines[2].len(), lines[2].trim_end().len());
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(&["x"]);
        t.row(&["x", "y", "z", "extra-dropped"]);
        let s = t.render();
        assert!(s.contains('x'));
        assert!(!s.contains("extra-dropped"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(&["n", "note"]);
        t.row(&["1", "has,comma"]);
        t.row(&["2", "has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(0.5, 1.0, 10).chars().count(), 5);
        assert_eq!(bar(2.0, 1.0, 10).chars().count(), 10, "clamps at full");
        assert_eq!(bar(0.0, 1.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn plot_renders_all_series() {
        let p = AsciiPlot::new(40, 10);
        let s = p.render(&[
            ("base", vec![(0.0, 1.0), (100.0, 1.0)]),
            ("gh", vec![(0.0, 1.0), (100.0, 5.0)]),
        ]);
        assert!(s.contains("base"));
        assert!(s.contains("gh"));
        assert!(s.contains('*'));
        assert!(s.contains('o'));
    }

    #[test]
    fn plot_empty_is_graceful() {
        let p = AsciiPlot::new(20, 8);
        assert_eq!(p.render(&[]), "(no data)\n");
    }
}
