//! Pool snapshot memory: the shared-store acceptance tests.
//!
//! An N-container GH pool holds N near-identical clean-state snapshots.
//! With the pool-shared [`SnapshotStore`](groundhog::mem::SnapshotStore)
//! they dedup to one base image plus per-container deltas, so:
//!
//! 1. a pool of 8 must hold **< 1.2×** one container's snapshot bytes
//!    when containers differ in < 5% of their pages (they do — only the
//!    timeline-dependent runtime-state page differs), comfortably inside
//!    the < 2× acceptance bound;
//! 2. the dedup ratio surfaced in `FleetStats` must match the store's
//!    own `FrameTable::live()` accounting exactly;
//! 3. dedup must not perturb the virtual timeline: a shared-store pool
//!    of one is bit-identical to a lone container.

use groundhog::core::GroundhogConfig;
use groundhog::faas::fleet::{Fleet, FleetConfig, Pool, RoutePolicy};
use groundhog::faas::Container;
use groundhog::functions::catalog::by_name;
use groundhog::isolation::StrategyKind;
use groundhog::mem::PAGE_SIZE;

const POOL: usize = 8;

fn gh_pool(size: usize, seed: u64) -> Pool {
    let spec = by_name("fannkuch (p)").unwrap();
    Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), size, seed).unwrap()
}

#[test]
fn pool_of_8_holds_under_1_2x_one_snapshot() {
    let pool = gh_pool(POOL, 42);
    let one_snapshot_bytes = pool.slots[0]
        .container
        .stats
        .prepare
        .as_ref()
        .unwrap()
        .snapshot_pages
        .unwrap()
        * PAGE_SIZE;
    let mem = pool.memory();
    assert!(
        mem.resident_bytes < one_snapshot_bytes * 12 / 10,
        "pool of {POOL} resident {} B vs 1.2× one snapshot {} B",
        mem.resident_bytes,
        one_snapshot_bytes * 12 / 10
    );
    // A fortiori the < 2× acceptance bound.
    assert!(mem.resident_bytes < one_snapshot_bytes * 2);
    assert!(
        mem.dedup_ratio > (POOL - 1) as f64,
        "near-identical snapshots must share: ratio {:.2}",
        mem.dedup_ratio
    );
}

#[test]
fn fleet_stats_dedup_matches_frame_table_accounting() {
    let mut pool = gh_pool(4, 7);
    let mut fleet = Fleet::new(FleetConfig::fixed(RoutePolicy::RestoreAware, 80.0, 7));
    // The workload dirties well under 5% of the image per request
    // (fannkuch's write set is a few dozen pages of a multi-thousand-page
    // image); the store is a clean-state structure and must be untouched
    // by request traffic.
    let before = pool.memory();
    let result = fleet.run(&mut pool, 120).unwrap();
    let after = pool.memory();
    assert_eq!(result.completed, 120);
    assert_eq!(
        before.unique_frames, after.unique_frames,
        "request traffic must not grow the clean-state store"
    );

    // FleetStats figures are exactly the store's accounting.
    let store = pool.store().lock().unwrap();
    let live = store.frames().live() as u64;
    assert_eq!(after.unique_frames, live);
    assert!(
        (result.stats.snapshot_dedup_ratio - store.stats().logical_pages as f64 / live as f64)
            .abs()
            < 1e-12,
        "dedup ratio must match FrameTable::live() accounting"
    );
    assert_eq!(
        result.stats.snapshot_resident_bytes, after.resident_bytes,
        "resident bytes surfaced verbatim"
    );
    drop(store);
    let one_snapshot_bytes = pool.slots[0]
        .container
        .stats
        .prepare
        .as_ref()
        .unwrap()
        .snapshot_pages
        .unwrap()
        * PAGE_SIZE;
    assert!(
        result.stats.snapshot_bytes_per_container < one_snapshot_bytes as f64 / 2.0,
        "4 containers share one base: per-container {} vs one private snapshot {}",
        result.stats.snapshot_bytes_per_container,
        one_snapshot_bytes
    );
}

#[test]
fn shared_store_does_not_perturb_timelines() {
    // A pool of one (shared store) must be bit-identical to a lone
    // container (private eager snapshot) — dedup is space-only.
    let spec = by_name("fannkuch (p)").unwrap();
    let pool = gh_pool(1, 42);
    let lone = Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 42).unwrap();
    assert_eq!(pool.slots[0].container.now(), lone.now());
    assert_eq!(
        pool.slots[0].container.stats.init_time,
        lone.stats.init_time
    );

    // The parity must also hold for a CoW-configured pool: cow_snapshot
    // takes precedence over the store (a CoW snapshot holds no page
    // copies to intern), so the cheaper CoW snapshot cost is charged in
    // both cases.
    let cow = GroundhogConfig {
        cow_snapshot: true,
        ..GroundhogConfig::gh()
    };
    let cow_pool = Pool::build(&spec, StrategyKind::Gh, cow.clone(), 1, 42).unwrap();
    let cow_lone = Container::cold_start(&spec, StrategyKind::Gh, cow, 42).unwrap();
    assert_eq!(cow_pool.slots[0].container.now(), cow_lone.now());
    assert_eq!(
        cow_pool.memory().unique_frames,
        0,
        "CoW snapshots intern nothing into the store"
    );
    assert!(
        cow_lone.stats.init_time < lone.stats.init_time,
        "CoW snapshot must stay cheaper than eager/shared"
    );
}

#[test]
fn pool_memory_scales_sub_linearly() {
    let small = gh_pool(2, 11).memory();
    let large = gh_pool(8, 11).memory();
    assert!(large.logical_pages > small.logical_pages * 3);
    assert!(
        (large.resident_bytes as f64) < small.resident_bytes as f64 * 1.5,
        "4× the containers must cost well under 1.5× the bytes: {} vs {}",
        large.resident_bytes,
        small.resident_bytes
    );
    assert!(large.resident_bytes_per_container < small.resident_bytes_per_container);
}
