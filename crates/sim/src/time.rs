//! Virtual time: a nanosecond-precision duration/instant type.
//!
//! All simulated costs and timestamps in the workspace are expressed as
//! [`Nanos`]. The type is deliberately a thin `u64` newtype: it is `Copy`,
//! totally ordered, and supports saturating arithmetic so that cost
//! accumulation can never panic in release builds.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time (or an instant on the virtual clock), in
/// nanoseconds.
///
/// # Examples
///
/// ```
/// use gh_sim::Nanos;
///
/// let a = Nanos::from_micros(3);
/// let b = Nanos::from_nanos(500);
/// assert_eq!((a + b).as_nanos(), 3_500);
/// assert_eq!(Nanos::from_millis(2).as_micros_f64(), 2_000.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// Zero duration / the clock epoch.
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable instant.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        Nanos((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest nanosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        Nanos((ms * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub const fn checked_sub(self, rhs: Nanos) -> Option<Nanos> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Nanos(v)),
            None => None,
        }
    }

    /// Scales the duration by a non-negative floating factor, rounding to
    /// the nearest nanosecond.
    #[inline]
    pub fn scale(self, factor: f64) -> Nanos {
        debug_assert!(factor >= 0.0, "negative time scale");
        Nanos((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// Returns `true` if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Nanos {
    /// Human-readable rendering with an adaptive unit (ns/µs/ms/s).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}µs", self.as_micros_f64())
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Nanos::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Nanos::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(Nanos::from_millis_f64(0.001).as_nanos(), 1_000);
    }

    #[test]
    fn negative_float_clamps_to_zero() {
        assert_eq!(Nanos::from_micros_f64(-3.0), Nanos::ZERO);
        assert_eq!(Nanos::from_millis_f64(-0.1), Nanos::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Nanos::MAX + Nanos::from_nanos(1), Nanos::MAX);
        assert_eq!(Nanos::ZERO - Nanos::from_nanos(1), Nanos::ZERO);
        assert_eq!(Nanos::MAX * 2, Nanos::MAX);
    }

    #[test]
    fn checked_sub_detects_underflow() {
        assert_eq!(
            Nanos::from_nanos(5).checked_sub(Nanos::from_nanos(3)),
            Some(Nanos::from_nanos(2))
        );
        assert_eq!(Nanos::from_nanos(3).checked_sub(Nanos::from_nanos(5)), None);
    }

    #[test]
    fn scaling_rounds_to_nearest() {
        assert_eq!(Nanos::from_nanos(10).scale(0.25).as_nanos(), 3); // 2.5 rounds up
        assert_eq!(Nanos::from_nanos(100).scale(1.5).as_nanos(), 150);
        assert_eq!(Nanos::from_nanos(100).scale(0.0), Nanos::ZERO);
    }

    #[test]
    fn display_picks_adaptive_units() {
        assert_eq!(Nanos::from_nanos(999).to_string(), "999ns");
        assert_eq!(Nanos::from_micros(2).to_string(), "2.00µs");
        assert_eq!(Nanos::from_millis(3).to_string(), "3.00ms");
        assert_eq!(Nanos::from_secs(4).to_string(), "4.000s");
    }

    #[test]
    fn sum_and_ordering() {
        let v = [
            Nanos::from_nanos(1),
            Nanos::from_nanos(2),
            Nanos::from_nanos(3),
        ];
        let total: Nanos = v.iter().copied().sum();
        assert_eq!(total.as_nanos(), 6);
        assert!(v[0] < v[1]);
        assert_eq!(v[2].max(v[0]), v[2]);
        assert_eq!(v[2].min(v[0]), v[0]);
    }
}
