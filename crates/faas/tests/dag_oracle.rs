//! DAG crash-equivalence oracle: the recovery contracts of
//! `gh_faas::workflow::{dag, migrate}` pinned down differentially.
//!
//! 1. **Disabled means invisible.** A DAG run with fault injection
//!    disabled (inert [`FaultConfig`], or none) is bit-identical —
//!    `{:?}` fingerprint and CSV rendering — to the plain run, for both
//!    the single-node container runner and the migrating cluster.
//! 2. **Crash-equivalence.** Across seeds × death rates × fan-out
//!    widths, a faulty run with zero abandonment ends in exactly the
//!    crash-free final KV state: same fingerprint, same per-workflow
//!    outputs, same applied version count (zero double-applied joins),
//!    and `duplicates_suppressed` fully accounted by the fault ledger.
//!    Every workflow is accounted: `completed + abandoned == workflows`.
//! 3. **Migration equivalence.** Node loss orphans in-flight hops; with
//!    migration on they re-dispatch along replica order carrying only
//!    the workflow's KV state, and the final state still equals the
//!    crash-free reference. The migration ledger balances:
//!    `kv.duplicates_suppressed == faults.duplicates +
//!    faults.duplicate_commits_absorbed`.
//! 4. **Autoscaling does not perturb recovery.** With the failure-aware
//!    scaler armed on top of faults + migration, repeats stay
//!    bit-identical and the crash-free state is still reached.

use gh_faas::fault::{FaultConfig, RetryPolicy};
use gh_faas::workflow::dag::{random_dag_spec, run_dag_workflows, DagResult, DagSpec};
use gh_faas::workflow::migrate::{run_migrating_dags, MigrateConfig};
use gh_faas::workflow::WorkflowConfig;
use gh_faas::NodeScaleConfig;
use gh_functions::catalog::by_name;
use gh_functions::FunctionSpec;
use gh_isolation::StrategyKind;
use gh_sim::Nanos;
use groundhog_core::GroundhogConfig;

fn funcs() -> Vec<FunctionSpec> {
    ["get-time (n)", "float (p)"]
        .iter()
        .map(|n| by_name(n).unwrap())
        .collect()
}

fn deaths(seed: u64, rate: f64) -> FaultConfig {
    let mut fc = FaultConfig::deaths(seed, rate);
    fc.retry = RetryPolicy {
        max_attempts: 10,
        ..RetryPolicy::bounded()
    };
    fc
}

/// CSV-style scalar rendering of a DAG run, the user-visible half of
/// the oracle (mirrors the dagsweep columns).
fn dag_csv(r: &DagResult) -> String {
    format!(
        "{},{},{},{},{},{},{},{}",
        r.workflows,
        r.completed,
        r.kv_fingerprint,
        r.kv_versions,
        r.duplicates_suppressed,
        r.hops_executed,
        r.replay_hash,
        r.faults.deaths,
    )
}

#[test]
fn disabled_faults_are_invisible_to_dag_runs() {
    let fs = funcs();
    for &seed in &[5u64, 91] {
        let spec = random_dag_spec(seed ^ 0xD1, fs.len(), 3);
        let cfg = WorkflowConfig::new(12, StrategyKind::Gh, seed);
        let plain = run_dag_workflows(&spec, &fs, GroundhogConfig::gh(), &cfg).unwrap();
        let inert_cfg = cfg.clone().with_faults(FaultConfig::none(seed));
        let inert = run_dag_workflows(&spec, &fs, GroundhogConfig::gh(), &inert_cfg).unwrap();
        assert_eq!(
            format!("{plain:?}"),
            format!("{inert:?}"),
            "seed={seed}: inert fault config changed the DAG run"
        );
        assert_eq!(dag_csv(&plain), dag_csv(&inert));
        assert!(plain.faults.is_empty());
        assert_eq!(plain.completed, 12);
    }
}

#[test]
fn dag_crash_equivalence_across_seeds_rates_and_widths() {
    let fs = funcs();
    for &seed in &[0xA5u64, 0x51CE] {
        for &width in &[2u32, 4] {
            let spec = random_dag_spec(seed ^ u64::from(width), fs.len(), width);
            let cfg = WorkflowConfig::new(10, StrategyKind::Gh, seed);
            let clean = run_dag_workflows(&spec, &fs, GroundhogConfig::gh(), &cfg).unwrap();
            for &rate in &[0.05f64, 0.15] {
                let fcfg = cfg.clone().with_faults(deaths(seed, rate));
                let faulty = run_dag_workflows(&spec, &fs, GroundhogConfig::gh(), &fcfg).unwrap();
                let tag = format!("seed={seed:x} width={width} rate={rate}");
                assert_eq!(
                    faulty.faults.abandoned, 0,
                    "{tag}: 10 attempts must ride out these rates"
                );
                assert_eq!(
                    faulty.completed + faulty.faults.abandoned,
                    faulty.workflows,
                    "{tag}: every workflow completes or is abandoned"
                );
                assert_eq!(faulty.outputs, clean.outputs, "{tag}: outputs diverged");
                assert_eq!(
                    faulty.kv_fingerprint, clean.kv_fingerprint,
                    "{tag}: final KV state diverged"
                );
                assert_eq!(
                    faulty.kv_versions, clean.kv_versions,
                    "{tag}: a retried join double-applied"
                );
                assert_eq!(
                    faulty.replay_hash, clean.replay_hash,
                    "{tag}: applied-commit order diverged"
                );
                assert_eq!(
                    faulty.duplicates_suppressed, faulty.faults.duplicates,
                    "{tag}: suppressed re-commits must match post-commit deaths"
                );
                assert!(
                    faulty.hops_executed > clean.hops_executed,
                    "{tag}: crashes must cost retried hop executions"
                );
            }
        }
    }
}

#[test]
fn chain_dag_agrees_with_the_chain_runner_shape() {
    // The degenerate DAG (a pure chain) exercises the same hop count
    // and commit discipline as `run_workflows`' chains: one applied
    // version per hop per workflow, all workflows complete.
    let fs = funcs();
    let spec = DagSpec::chain(&[0, 1, 0]);
    let cfg = WorkflowConfig::new(8, StrategyKind::Gh, 33);
    let r = run_dag_workflows(&spec, &fs, GroundhogConfig::gh(), &cfg).unwrap();
    assert_eq!(r.completed, 8);
    assert_eq!(r.kv_versions, 8 * 3);
    assert_eq!(r.duplicates_suppressed, 0);
}

#[test]
fn migration_converges_to_the_crash_free_state_across_seeds_and_rates() {
    let cat = gh_faas::trace::synthetic_catalog(10, 77);
    for &seed in &[21u64, 0xBEEF] {
        let clean_cfg = MigrateConfig::new(5, 70, seed);
        let clean = run_migrating_dags(&cat, &clean_cfg);
        assert_eq!(clean.completed, 70);
        for &loss in &[0.15f64, 0.3] {
            let mut fc = FaultConfig::none(seed);
            fc.node_loss_rate = loss;
            fc.node_loss_window = Nanos::from_millis(30);
            fc.death_rate = 0.04;
            fc.retry = RetryPolicy {
                max_attempts: 12,
                ..RetryPolicy::bounded()
            };
            let faulty_cfg = clean_cfg.clone().with_faults(fc);
            let faulty = run_migrating_dags(&cat, &faulty_cfg);
            let tag = format!("seed={seed:x} loss={loss}");
            assert_eq!(faulty.faults.abandoned, 0, "{tag}: 12 attempts suffice");
            assert_eq!(faulty.completed, 70, "{tag}");
            assert!(faulty.faults.orphaned_hops > 0, "{tag}: no orphans seen");
            assert!(faulty.faults.migrations > 0, "{tag}: no migrations seen");
            assert_eq!(faulty.outputs, clean.outputs, "{tag}: outputs diverged");
            assert_eq!(
                faulty.kv_fingerprint, clean.kv_fingerprint,
                "{tag}: migrated state diverged from crash-free"
            );
            assert_eq!(faulty.kv_versions, clean.kv_versions, "{tag}");
            assert_eq!(
                faulty.duplicates_suppressed,
                faulty.faults.duplicates + faulty.faults.duplicate_commits_absorbed,
                "{tag}: the migration ledger must balance"
            );
            // Repeats of the faulty migrating run are bit-identical.
            assert_eq!(
                format!("{faulty:?}"),
                format!("{:?}", run_migrating_dags(&cat, &faulty_cfg)),
                "{tag}: repeat diverged"
            );
        }
    }
}

#[test]
fn autoscaled_migration_is_deterministic_and_still_recovers() {
    let cat = gh_faas::trace::synthetic_catalog(10, 55);
    let mut fc = FaultConfig::none(55);
    fc.node_loss_rate = 0.2;
    fc.node_loss_window = Nanos::from_millis(30);
    fc.retry = RetryPolicy {
        max_attempts: 12,
        ..RetryPolicy::bounded()
    };
    let cfg = MigrateConfig::new(6, 90, 55)
        .with_faults(fc)
        .with_autoscale(NodeScaleConfig::balanced(2));
    let a = run_migrating_dags(&cat, &cfg);
    let b = run_migrating_dags(&cat, &cfg);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "autoscaled repeat diverged"
    );
    let s = a.scale.expect("scaler armed");
    assert!(s.windows > 0);
    if a.faults.abandoned == 0 {
        let clean = run_migrating_dags(&cat, &MigrateConfig::new(6, 90, 55));
        assert_eq!(a.kv_fingerprint, clean.kv_fingerprint);
        assert_eq!(a.outputs, clean.outputs);
    }
}
