//! One function container on one invoker core.
//!
//! Drives the Fig. 1 life cycle and the per-request sequence:
//! interposition → admission (buffering until clean, §4.5) → execution →
//! response → off-critical-path cleanup (restore / teardown / remap).

use gh_functions::behavior::{ExecReport, Executor, RequestCtx};
use gh_functions::FunctionSpec;
use gh_isolation::{PostReport, PrepareReport, Strategy, StrategyError, StrategyKind};
use gh_proc::Kernel;
use gh_runtime::{FunctionProcess, RuntimeProfile};
use gh_sim::{DetRng, Nanos};
use groundhog_core::GroundhogConfig;

use crate::proxy;
use crate::request::{Request, Response};

/// Environment-instantiation time (Fig. 1: "100s of ms").
const ENV_INSTANTIATION: Nanos = Nanos::from_millis(300);

/// The outcome of one invocation, as measured at the invoker.
#[derive(Clone, Debug)]
pub struct InvokeOutcome {
    /// The response sent back to the platform.
    pub response: Response,
    /// Invoker-measured latency: arrival at the container to response
    /// (§5.3: "only the function execution time at the invoker").
    pub invoker_latency: Nanos,
    /// Off-critical-path work after the response (restore/teardown).
    pub off_path: Nanos,
    /// Virtual time at which the container is provably clean again and
    /// may admit the next request (`response.completed_at + off_path`) —
    /// the restore-completion readiness event a fleet scheduler routes on.
    pub ready_at: Nanos,
    /// Execution detail.
    pub exec: ExecReport,
}

/// Per-container lifetime statistics.
#[derive(Clone, Debug, Default)]
pub struct ContainerStats {
    /// Requests served.
    pub requests: u64,
    /// Total cold-start time (environment + runtime + data init).
    pub init_time: Nanos,
    /// Strategy preparation (snapshot) report.
    pub prepare: Option<PrepareReport>,
    /// Most recent post-request report.
    pub last_post: Option<PostReport>,
}

/// A warm function container bound to one core.
pub struct Container {
    /// The machine (one per core; containers do not share kernels, just
    /// as the paper pins containers to cores).
    pub kernel: Kernel,
    /// The function image.
    pub fproc: FunctionProcess,
    /// The deployed function.
    pub spec: FunctionSpec,
    /// Isolation strategy state.
    pub strategy: Strategy,
    /// Measurement noise source.
    rng: DetRng,
    /// Lifetime stats.
    pub stats: ContainerStats,
    next_seq: u64,
}

impl Container {
    /// Cold-starts a container: environment instantiation, runtime
    /// initialization, data initialization via the deployer's dummy
    /// request (§4.1), and strategy preparation (GH snapshot).
    pub fn cold_start(
        spec: &FunctionSpec,
        kind: StrategyKind,
        gh_cfg: GroundhogConfig,
        seed: u64,
    ) -> Result<Container, StrategyError> {
        Self::cold_start_with_store(spec, kind, gh_cfg, seed, None)
    }

    /// Cold-starts a container whose clean-state snapshot is interned
    /// into a pool-shared [`SnapshotStore`](gh_mem::SnapshotStore)
    /// (`None` keeps the snapshot private). Interning charges exactly the
    /// eager snapshot cost, so the container's timeline is independent of
    /// the store — dedup is a pool-memory optimization only.
    pub fn cold_start_with_store(
        spec: &FunctionSpec,
        kind: StrategyKind,
        gh_cfg: GroundhogConfig,
        seed: u64,
        store: Option<gh_mem::StoreHandle>,
    ) -> Result<Container, StrategyError> {
        Self::cold_start_pooled(spec, kind, gh_cfg, seed, store, None)
    }

    /// Like [`Container::cold_start_with_store`], but when the pool
    /// already holds the store's lock it passes the guard as `locked` so
    /// the snapshot intern reuses it instead of re-locking — one lock
    /// acquisition per [`Pool::build`](crate::fleet::Pool::build) or
    /// grow step instead of one per container. `locked` (when `Some`)
    /// must guard the same store as `store`.
    pub fn cold_start_pooled(
        spec: &FunctionSpec,
        kind: StrategyKind,
        gh_cfg: GroundhogConfig,
        seed: u64,
        store: Option<gh_mem::StoreHandle>,
        locked: Option<&mut gh_mem::SnapshotStore>,
    ) -> Result<Container, StrategyError> {
        let mut kernel = Kernel::boot();
        let mut rng = DetRng::new(seed);
        let t0 = kernel.clock.now();

        // Fig. 1 phase 1: environment instantiation.
        kernel.charge(ENV_INSTANTIATION.scale(rng.lognormal_factor(0.15)));

        // Fig. 1 phase 2: runtime initialization.
        let mut fproc = FunctionProcess::build(
            &mut kernel,
            spec.name,
            RuntimeProfile::for_kind(spec.runtime),
            spec.total_pages(),
        );

        // Fig. 1 phase 3: data initialization — the dummy request triggers
        // lazy paging / class loading so the snapshot captures it.
        Executor::invoke(&mut kernel, &mut fproc, spec, &RequestCtx::dummy(0));

        // Strategy preparation (snapshot for GH/GHNOP, heap checkpoint for
        // Faasm).
        let mut strategy = Strategy::create_with_store(kind, &kernel, &fproc, spec, gh_cfg, store)?;
        let prepare = strategy.prepare_with(&mut kernel, &fproc, locked)?;

        let init_time = kernel.clock.now() - t0;
        Ok(Container {
            kernel,
            fproc,
            spec: spec.clone(),
            strategy,
            rng,
            stats: ContainerStats {
                requests: 0,
                init_time,
                prepare: Some(prepare),
                last_post: None,
            },
            next_seq: 1,
        })
    }

    /// The strategy kind this container runs.
    pub fn kind(&self) -> StrategyKind {
        self.strategy.kind()
    }

    /// Serves one request at the invoker. The caller (client model) is
    /// responsible for pacing; the container is synchronous and serves
    /// one request at a time (§3.1, one-at-a-time execution).
    pub fn invoke(&mut self, req: &Request) -> Result<InvokeOutcome, StrategyError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t_arrival = self.kernel.clock.now();

        // Interposition: the manager proxies the payload in (and the
        // response out); charged on the critical path.
        let payload = req.input_kb + self.spec.output_kb;
        let proxy_cost =
            proxy::interposition_cost(&self.kernel.cost, self.kind(), self.spec.runtime, payload);
        self.kernel.charge(proxy_cost);

        // Admission (buffers until clean; forks for FORK).
        let target = self
            .strategy
            .admit(&mut self.kernel, &self.fproc, &req.principal)?;

        // Execute with the strategy's compute scaling (wasm vs native).
        let scale = self.strategy.compute_scale();
        let ctx = RequestCtx::new(req.id, &req.principal, seq);
        let exec = if target.pid() == self.fproc.pid {
            // In-place execution (everything but FORK): run against the
            // persistent image so the cached write plans and the batch
            // scratch survive across invocations — no per-request
            // region/plan clone.
            self.fproc.invocations = seq;
            Self::invoke_scaled(&mut self.kernel, &mut self.fproc, &self.spec, &ctx, scale)
        } else {
            // FORK isolation: the request runs in a CoW child, so bind a
            // view of the image to the child's pid.
            let mut view = self.fproc.with_pid(target.pid());
            view.invocations = seq;
            let exec = Self::invoke_scaled(&mut self.kernel, &mut view, &self.spec, &ctx, scale);
            self.fproc.invocations = view.invocations;
            exec
        };

        // Small invoker-side jitter (scheduling, pipes).
        let jitter = Nanos::from_micros(300).scale(self.rng.lognormal_factor(0.8));
        self.kernel.charge(jitter);

        // Response leaves the container now.
        let t_response = self.kernel.clock.now();
        let response = Response {
            request_id: req.id,
            ok: true,
            output_kb: self.spec.output_kb,
            completed_at: t_response,
        };

        // Off the critical path: rollback / teardown / remap.
        let post = self.strategy.conclude(&mut self.kernel, &self.fproc)?;
        self.stats.requests += 1;
        self.stats.last_post = Some(post.clone());

        Ok(InvokeOutcome {
            response,
            invoker_latency: t_response - t_arrival,
            off_path: post.off_path,
            ready_at: self.kernel.clock.now(),
            exec,
        })
    }

    /// True when the container may admit the next request without
    /// violating isolation (§4.5's gate, surfaced for fleet routing).
    /// Note: in §4.4's deferred-restore mode this includes the
    /// `NeedsRestore` state, where the process still holds the previous
    /// principal's data — admission is safe because the manager rolls
    /// back (or skips, same principal) *before* the request reaches the
    /// process. Use [`Container::admits_without_restore`] to ask the
    /// stronger question "is it clean for this principal right now".
    pub fn is_ready(&self) -> bool {
        self.strategy.is_ready()
    }

    /// True when admitting `principal` now would not charge a restore to
    /// the request's critical path (surfaced for restore-aware routing).
    pub fn admits_without_restore(&self, principal: &str) -> bool {
        self.strategy.admits_without_restore(principal)
    }

    /// Executes with the compute lump scaled (Faasm's wasm slowdown /
    /// speedup). The scaling applies to the intrinsic compute time, not
    /// to fault costs.
    fn invoke_scaled(
        kernel: &mut Kernel,
        view: &mut FunctionProcess,
        spec: &FunctionSpec,
        ctx: &RequestCtx,
        scale: f64,
    ) -> ExecReport {
        if (scale - 1.0).abs() < 1e-9 {
            return Executor::invoke(kernel, view, spec, ctx);
        }
        // Scale the benchmark's intrinsic latency for wasm execution.
        let mut scaled = spec.clone();
        scaled.base_invoker_ms = spec.base_invoker_ms * scale;
        Executor::invoke(kernel, view, &scaled, ctx)
    }

    /// Virtual time on this container's core.
    pub fn now(&self) -> Nanos {
        self.kernel.clock.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_functions::catalog::by_name;
    use gh_mem::RequestId;

    fn start(name: &str, kind: StrategyKind) -> Container {
        let spec = by_name(name).unwrap();
        Container::cold_start(&spec, kind, GroundhogConfig::gh(), 42).unwrap()
    }

    #[test]
    fn cold_start_runs_fig1_phases() {
        let c = start("float (p)", StrategyKind::Gh);
        // Environment (~300ms) + runtime init (~350ms) + dummy + snapshot.
        assert!(c.stats.init_time > Nanos::from_millis(500));
        let prep = c.stats.prepare.as_ref().unwrap();
        assert!(prep.snapshot_pages.unwrap() > 0);
    }

    #[test]
    fn invoke_measures_invoker_latency() {
        let mut c = start("float (p)", StrategyKind::Base);
        let out = c.invoke(&Request::new(1, "alice", 1)).unwrap();
        assert!(out.response.ok);
        let ms = out.invoker_latency.as_millis_f64();
        assert!(
            (20.0..45.0).contains(&ms),
            "float(p) baseline invoker ≈ 27ms, got {ms:.1}"
        );
        assert_eq!(out.off_path, Nanos::ZERO);
    }

    #[test]
    fn gh_has_off_path_restore() {
        let mut c = start("float (p)", StrategyKind::Gh);
        let out = c.invoke(&Request::new(1, "alice", 1)).unwrap();
        assert!(out.off_path > Nanos::ZERO);
        // And the process is clean afterwards.
        let proc = c.kernel.process(c.fproc.pid).unwrap();
        assert!(proc
            .mem
            .tainted_pages(RequestId(1), c.kernel.frames())
            .is_empty());
    }

    #[test]
    fn sequential_requests_are_isolated_under_gh() {
        let mut c = start("telco (p)", StrategyKind::Gh);
        for i in 1..=4 {
            c.invoke(&Request::new(
                i,
                if i % 2 == 0 { "bob" } else { "alice" },
                1,
            ))
            .unwrap();
        }
        let proc = c.kernel.process(c.fproc.pid).unwrap();
        for i in 1..=4 {
            assert!(proc
                .mem
                .tainted_pages(RequestId(i), c.kernel.frames())
                .is_empty());
        }
        assert_eq!(c.stats.requests, 4);
    }

    #[test]
    fn base_is_faster_but_dirty() {
        let mut base = start("telco (p)", StrategyKind::Base);
        let mut gh = start("telco (p)", StrategyKind::Gh);
        let b = base.invoke(&Request::new(1, "alice", 1)).unwrap();
        let g = gh.invoke(&Request::new(1, "alice", 1)).unwrap();
        assert!(
            g.invoker_latency >= b.invoker_latency,
            "GH pays tracking + proxy"
        );
        let proc = base.kernel.process(base.fproc.pid).unwrap();
        assert!(!proc
            .mem
            .tainted_pages(RequestId(1), base.kernel.frames())
            .is_empty());
    }

    #[test]
    fn fork_supported_for_c_only() {
        let mut c = start("atax (c)", StrategyKind::Fork);
        let out = c.invoke(&Request::new(1, "a", 1)).unwrap();
        assert!(out.response.ok);
        assert!(out.off_path > Nanos::ZERO, "child teardown is off-path");
        let spec = by_name("get-time (n)").unwrap();
        assert!(
            Container::cold_start(&spec, StrategyKind::Fork, GroundhogConfig::gh(), 1).is_err()
        );
    }

    #[test]
    fn faasm_scales_compute() {
        let mut f = start("pyaes (p)", StrategyKind::Faasm);
        let out = f.invoke(&Request::new(1, "a", 1)).unwrap();
        let ms = out.invoker_latency.as_millis_f64();
        // Table 1: pyaes faasm invoker ≈ 8559ms vs base 4672ms.
        assert!(
            ms > 7000.0,
            "wasm pyaes should be ~1.8x native, got {ms:.0}ms"
        );
    }
}
