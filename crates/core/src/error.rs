//! Error types for the snapshot/restore engine.

use gh_proc::kernel::ProcError;
use gh_proc::PtraceError;

/// Errors surfaced by Groundhog operations.
#[derive(Debug)]
pub enum GhError {
    /// ptrace-level failure.
    Ptrace(PtraceError),
    /// Process-table failure.
    Proc(ProcError),
    /// Operation requires a snapshot but none was taken.
    NoSnapshot,
    /// Manager was driven through an invalid state transition.
    BadState {
        /// State the manager was in.
        state: &'static str,
        /// Operation attempted.
        op: &'static str,
    },
}

impl From<PtraceError> for GhError {
    fn from(e: PtraceError) -> Self {
        GhError::Ptrace(e)
    }
}

impl From<ProcError> for GhError {
    fn from(e: ProcError) -> Self {
        GhError::Proc(e)
    }
}

impl core::fmt::Display for GhError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GhError::Ptrace(e) => write!(f, "ptrace: {e}"),
            GhError::Proc(e) => write!(f, "process: {e}"),
            GhError::NoSnapshot => write!(f, "no snapshot taken"),
            GhError::BadState { state, op } => {
                write!(f, "invalid manager transition: {op} while {state}")
            }
        }
    }
}

impl std::error::Error for GhError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(GhError::NoSnapshot.to_string(), "no snapshot taken");
        let e = GhError::BadState {
            state: "Executing",
            op: "begin_request",
        };
        assert!(e.to_string().contains("Executing"));
        assert!(e.to_string().contains("begin_request"));
    }
}
